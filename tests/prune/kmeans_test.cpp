#include "prune/kmeans.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace shflbw {
namespace {

TEST(KMeans, OutputIsBalancedPermutation) {
  Rng rng(163);
  const Matrix<float> mask = rng.SparseMatrix(32, 16, 0.5);
  const RowGrouping g = BalancedKMeansRows(mask, 8);
  ASSERT_EQ(g.storage_to_original.size(), 32u);
  std::set<int> seen(g.storage_to_original.begin(),
                     g.storage_to_original.end());
  EXPECT_EQ(seen.size(), 32u);  // a permutation: all distinct
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 31);
}

TEST(KMeans, RecoversPlantedClusters) {
  // Two planted patterns interleaved row-by-row: clustering must group
  // rows of the same pattern together.
  Matrix<float> mask(8, 8);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (r % 2 == 0) mask(r, c) = 1;          // pattern A: cols 0-3
      else mask(r, c + 4) = 1;                 // pattern B: cols 4-7
    }
  }
  const RowGrouping g = BalancedKMeansRows(mask, 4);
  // Each group of 4 must be all-even or all-odd rows.
  for (int grp = 0; grp < 2; ++grp) {
    std::set<int> parities;
    for (int i = 0; i < 4; ++i) {
      parities.insert(g.storage_to_original[grp * 4 + i] % 2);
    }
    EXPECT_EQ(parities.size(), 1u) << "group " << grp << " mixes patterns";
  }
  EXPECT_NEAR(g.total_distance, 0.0, 1e-9);  // perfect clustering
}

TEST(KMeans, DeterministicWithSeed) {
  Rng rng(167);
  const Matrix<float> mask = rng.SparseMatrix(24, 12, 0.4);
  KMeansOptions opts;
  opts.seed = 5;
  const RowGrouping a = BalancedKMeansRows(mask, 6, opts);
  const RowGrouping b = BalancedKMeansRows(mask, 6, opts);
  EXPECT_EQ(a.storage_to_original, b.storage_to_original);
}

TEST(KMeans, SingleGroupDegenerates) {
  Rng rng(173);
  const Matrix<float> mask = rng.SparseMatrix(8, 8, 0.5);
  const RowGrouping g = BalancedKMeansRows(mask, 8);  // one cluster
  std::set<int> seen(g.storage_to_original.begin(),
                     g.storage_to_original.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(KMeans, GroupSizeMustDivideRows) {
  EXPECT_THROW(BalancedKMeansRows(Matrix<float>(10, 4), 3), Error);
}

TEST(KMeans, MoreIterationsNeverWorseOnPlanted) {
  // With planted structure, 10 iterations reach zero distance; 1
  // iteration may not, but never goes below zero.
  Matrix<float> mask(16, 16);
  for (int r = 0; r < 16; ++r) {
    const int type = r % 4;
    for (int c = 0; c < 4; ++c) mask(r, type * 4 + c) = 1;
  }
  KMeansOptions many;
  many.iterations = 10;
  const RowGrouping g = BalancedKMeansRows(mask, 4, many);
  EXPECT_GE(g.total_distance, 0.0);
  EXPECT_NEAR(g.total_distance, 0.0, 1e-9);
}

}  // namespace
}  // namespace shflbw
