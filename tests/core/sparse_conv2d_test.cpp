#include "core/sparse_conv2d.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace shflbw {
namespace {

const GpuSpec& V100() { return GetGpuSpec(GpuArch::kV100); }

ConvShape TinyShape() {
  ConvShape s;
  s.batch = 1;
  s.in_c = 4;
  s.in_h = s.in_w = 5;
  s.out_c = 8;
  s.kh = s.kw = 3;
  s.pad = 1;
  return s;
}

Tensor4 RandomInput(const ConvShape& s, std::uint64_t seed) {
  Rng rng(seed);
  Tensor4 t(s.batch, s.in_c, s.in_h, s.in_w);
  for (auto& v : t.data) v = static_cast<float>(rng.Normal());
  return t;
}

TEST(SparseConv2d, DenseModeMatchesConvKernel) {
  const ConvShape s = TinyShape();
  Rng rng(347);
  const Matrix<float> w = rng.NormalMatrix(s.out_c, s.GemmK());
  SparseConv2d::Options opt;
  opt.pattern = SparsePattern::kDense;
  const SparseConv2d conv(w, s, opt);
  const Tensor4 input = RandomInput(s, 349);
  EXPECT_EQ(conv.Forward(input), Conv2dDense(input, w, s, V100()).c);
}

TEST(SparseConv2d, ShflBwForwardMatchesDenseOnPrunedFilters) {
  const ConvShape s = TinyShape();
  Rng rng(353);
  const Matrix<float> w = rng.NormalMatrix(s.out_c, s.GemmK());
  SparseConv2d::Options opt;
  opt.pattern = SparsePattern::kShflBw;
  opt.density = 0.25;
  opt.v = 4;
  const SparseConv2d conv(w, s, opt);
  const Tensor4 input = RandomInput(s, 359);
  EXPECT_EQ(conv.Forward(input),
            Conv2dDense(input, conv.pruned_weights(), s, V100()).c);
}

TEST(SparseConv2d, RejectsUnsupportedPatterns) {
  const ConvShape s = TinyShape();
  Matrix<float> w(s.out_c, s.GemmK());
  SparseConv2d::Options opt;
  opt.pattern = SparsePattern::kBlockWise;
  EXPECT_THROW(SparseConv2d(w, s, opt), Error);
}

TEST(SparseConv2d, RejectsMismatchedFilterShape) {
  const ConvShape s = TinyShape();
  SparseConv2d::Options opt;
  opt.pattern = SparsePattern::kDense;
  EXPECT_THROW(SparseConv2d(Matrix<float>(3, 3), s, opt), Error);
}

TEST(SparseConv2d, ModelTimeAndSpeedup) {
  ConvShape s;
  s.batch = 32;
  s.in_c = 256;
  s.in_h = s.in_w = 14;
  s.out_c = 256;
  s.kh = s.kw = 3;
  s.pad = 1;
  Rng rng(367);
  const Matrix<float> w = rng.NormalMatrix(s.out_c, s.GemmK());
  SparseConv2d::Options opt;
  opt.pattern = SparsePattern::kShflBw;
  opt.density = 0.25;
  opt.v = 32;
  const SparseConv2d conv(w, s, opt);
  EXPECT_GT(conv.ModelTime(V100()).total_s, 0.0);
  EXPECT_GT(conv.SpeedupOverDense(V100()), 1.0);
}

}  // namespace
}  // namespace shflbw
