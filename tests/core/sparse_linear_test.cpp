#include "core/sparse_linear.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/gemm_dense.h"

namespace shflbw {
namespace {

const GpuSpec& V100() { return GetGpuSpec(GpuArch::kV100); }

SparseLinear::Options Opt(SparsePattern p, double density, int v) {
  SparseLinear::Options o;
  o.pattern = p;
  o.density = density;
  o.v = v;
  return o;
}

class AllPatterns : public ::testing::TestWithParam<SparsePattern> {};

TEST_P(AllPatterns, ForwardMatchesReferenceOnPrunedWeights) {
  Rng rng(283);
  const Matrix<float> w = rng.NormalMatrix(32, 32);
  const Matrix<float> x = rng.NormalMatrix(32, 12);
  const double density =
      GetParam() == SparsePattern::kBalanced24 ? 0.5 : 0.25;
  const SparseLinear layer(w, Opt(GetParam(), density, 8));
  EXPECT_EQ(layer.Forward(x), GemmReference(layer.pruned_weights(), x));
}

TEST_P(AllPatterns, AchievedDensityNearTarget) {
  Rng rng(293);
  const Matrix<float> w = rng.NormalMatrix(64, 64);
  const double density =
      GetParam() == SparsePattern::kBalanced24 ? 0.5 : 0.25;
  const SparseLinear layer(w, Opt(GetParam(), density, 16));
  if (GetParam() == SparsePattern::kDense) {
    EXPECT_DOUBLE_EQ(layer.AchievedDensity(), 1.0);
  } else {
    EXPECT_NEAR(layer.AchievedDensity(), density, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, AllPatterns,
    ::testing::Values(SparsePattern::kDense, SparsePattern::kUnstructured,
                      SparsePattern::kBlockWise, SparsePattern::kVectorWise,
                      SparsePattern::kShflBw, SparsePattern::kBalanced24));

TEST(SparseLinear, MaskedWeightsAreSubsetOfOriginal) {
  Rng rng(307);
  const Matrix<float> w = rng.NormalMatrix(32, 32);
  const SparseLinear layer(w, Opt(SparsePattern::kShflBw, 0.25, 8));
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) {
      const float pv = layer.pruned_weights()(r, c);
      EXPECT_TRUE(pv == 0.0f || pv == w(r, c));
    }
  }
}

TEST(SparseLinear, ShflBwSpeedupOverDenseAt75PercentSparsity) {
  Rng rng(311);
  const Matrix<float> w = rng.NormalMatrix(2048, 2048);
  const SparseLinear layer(w, Opt(SparsePattern::kShflBw, 0.25, 64));
  // Fig. 1 region C: tensor-core sparse beats tensor-core dense at
  // 75% sparsity.
  EXPECT_GT(layer.SpeedupOverDense(128, V100()), 1.0);
}

TEST(SparseLinear, UnstructuredSlowerThanDenseOnTensorCoreBaseline) {
  Rng rng(313);
  const Matrix<float> w = rng.NormalMatrix(2048, 2048);
  const SparseLinear layer(w, Opt(SparsePattern::kUnstructured, 0.25, 64));
  // §6.2: unstructured cannot exceed the TC dense baseline even at
  // high sparsity (here 75%).
  EXPECT_LT(layer.SpeedupOverDense(128, V100()), 1.0);
}

TEST(SparseLinear, StatsConsistentWithModelTime) {
  Rng rng(317);
  const Matrix<float> w = rng.NormalMatrix(256, 256);
  const SparseLinear layer(w, Opt(SparsePattern::kShflBw, 0.25, 32));
  const KernelStats s = layer.Stats(64, V100());
  const TimeBreakdown t = layer.ModelTime(64, V100());
  EXPECT_DOUBLE_EQ(CostModel(V100()).Estimate(s).total_s, t.total_s);
  EXPECT_EQ(s.kernel_class, KernelClass::kShflBwTensorCore);
}

TEST(SparseLinear, Balanced24RequiresHalfDensity) {
  Rng rng(331);
  const Matrix<float> w = rng.NormalMatrix(16, 16);
  EXPECT_THROW(SparseLinear(w, Opt(SparsePattern::kBalanced24, 0.25, 8)),
               Error);
}

TEST(SparseLinear, DensePatternKeepsAllWeights) {
  Rng rng(337);
  const Matrix<float> w = rng.NormalMatrix(16, 16);
  const SparseLinear layer(w, Opt(SparsePattern::kDense, 1.0, 8));
  EXPECT_EQ(layer.pruned_weights(), w);
}

}  // namespace
}  // namespace shflbw
