#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "format/balanced24.h"
#include "prune/importance.h"

namespace shflbw {
namespace {

TEST(Pattern, NamesRoundTrip) {
  for (SparsePattern p :
       {SparsePattern::kDense, SparsePattern::kUnstructured,
        SparsePattern::kBlockWise, SparsePattern::kVectorWise,
        SparsePattern::kShflBw, SparsePattern::kBalanced24}) {
    EXPECT_EQ(ParseSparsePattern(SparsePatternName(p)), p);
  }
  EXPECT_EQ(ParseSparsePattern("VW"), SparsePattern::kVectorWise);
  EXPECT_EQ(ParseSparsePattern("ShflBW"), SparsePattern::kShflBw);
  EXPECT_THROW(ParseSparsePattern("nonsense"), Error);
}

TEST(Pipeline, DensePatternIsAllOnes) {
  Rng rng(373);
  const Matrix<float> w = rng.NormalMatrix(8, 8);
  const PruneResult r = PruneWithPattern(w, SparsePattern::kDense, 1.0);
  EXPECT_EQ(CountNonZeros(r.mask), 64u);
  EXPECT_EQ(r.pruned_weights, w);
  EXPECT_FALSE(r.storage_to_original.has_value());
}

TEST(Pipeline, ShflBwCarriesPermutation) {
  Rng rng(379);
  const Matrix<float> w = rng.NormalMatrix(32, 32);
  PruneOptions opts;
  opts.v = 8;
  const PruneResult r =
      PruneWithPattern(w, SparsePattern::kShflBw, 0.25, opts);
  ASSERT_TRUE(r.storage_to_original.has_value());
  EXPECT_EQ(r.storage_to_original->size(), 32u);
}

TEST(Pipeline, PrunedWeightsEqualMaskTimesWeights) {
  Rng rng(383);
  const Matrix<float> w = rng.NormalMatrix(32, 32);
  PruneOptions opts;
  opts.v = 8;
  for (SparsePattern p :
       {SparsePattern::kUnstructured, SparsePattern::kBlockWise,
        SparsePattern::kVectorWise, SparsePattern::kShflBw}) {
    const PruneResult r = PruneWithPattern(w, p, 0.25, opts);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_EQ(r.pruned_weights.storage()[i],
                w.storage()[i] * r.mask.storage()[i]);
    }
  }
}

TEST(Pipeline, Balanced24MaskSatisfiesConstraint) {
  Rng rng(389);
  const Matrix<float> w = rng.NormalMatrix(16, 32);
  const PruneResult r =
      PruneWithPattern(w, SparsePattern::kBalanced24, 0.5);
  EXPECT_TRUE(Satisfies24(r.pruned_weights));
  EXPECT_THROW(PruneWithPattern(w, SparsePattern::kBalanced24, 0.3), Error);
}

TEST(Pipeline, PatternMaskMatchesPruneWithPattern) {
  Rng rng(397);
  const Matrix<float> w = rng.NormalMatrix(32, 32);
  PruneOptions opts;
  opts.v = 8;
  const Matrix<float> scores = MagnitudeScores(w);
  const Matrix<float> mask =
      PatternMask(scores, SparsePattern::kVectorWise, 0.25, opts);
  const PruneResult r =
      PruneWithPattern(w, SparsePattern::kVectorWise, 0.25, opts);
  EXPECT_EQ(mask, r.mask);
}

}  // namespace
}  // namespace shflbw
