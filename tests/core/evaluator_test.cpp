#include "core/evaluator.h"

#include <gtest/gtest.h>

#include "model/gnmt.h"
#include "model/resnet50.h"
#include "model/transformer.h"
#include "model/weight_synth.h"

namespace shflbw {
namespace {

const GpuSpec& V100() { return GetGpuSpec(GpuArch::kV100); }
const GpuSpec& T4() { return GetGpuSpec(GpuArch::kT4); }
const GpuSpec& A100() { return GetGpuSpec(GpuArch::kA100); }

TEST(Evaluator, PatternToKernelClassMapping) {
  EXPECT_EQ(PatternKernelClass(SparsePattern::kShflBw),
            KernelClass::kShflBwTensorCore);
  EXPECT_EQ(PatternKernelClass(SparsePattern::kUnstructured),
            KernelClass::kSputnik);
  EXPECT_EQ(PatternKernelClass(SparsePattern::kDense),
            KernelClass::kDenseTensorCore);
}

TEST(Evaluator, TransformerShflBwSpeedupHeadline) {
  // Fig. 6 anchor: Shfl-BW V=64 at 75% sparsity accelerates Transformer
  // GEMM layers ~1.81x (V100), ~4.18x (T4), ~1.90x (A100). The model
  // must land in the right bands, with T4 clearly the largest.
  const auto layers = TransformerLayers();
  const auto counts = TransformerLayerCounts();
  const auto v100 = EvaluateGemmModel(layers, counts,
                                      KernelClass::kShflBwTensorCore, 0.25,
                                      64, V100());
  const auto t4 = EvaluateGemmModel(layers, counts,
                                    KernelClass::kShflBwTensorCore, 0.25, 64,
                                    T4());
  const auto a100 = EvaluateGemmModel(layers, counts,
                                      KernelClass::kShflBwTensorCore, 0.25,
                                      64, A100());
  ASSERT_TRUE(v100 && t4 && a100);
  EXPECT_GT(v100->speedup, 1.3);
  EXPECT_LT(v100->speedup, 2.5);
  EXPECT_GT(t4->speedup, 3.0);
  EXPECT_LT(t4->speedup, 5.0);
  EXPECT_GT(a100->speedup, 1.3);
  EXPECT_LT(a100->speedup, 2.6);
  EXPECT_GT(t4->speedup, v100->speedup);
  EXPECT_GT(t4->speedup, a100->speedup);
}

TEST(Evaluator, SpeedupGrowsWithSparsity) {
  const auto layers = TransformerLayers();
  const auto counts = TransformerLayerCounts();
  double prev = 0.0;
  for (double density : {0.5, 0.25, 0.15, 0.05}) {
    const auto r = EvaluateGemmModel(layers, counts,
                                     KernelClass::kShflBwTensorCore, density,
                                     64, V100());
    ASSERT_TRUE(r);
    EXPECT_GT(r->speedup, prev) << density;
    prev = r->speedup;
  }
}

TEST(Evaluator, UnstructuredBelowDenseAtModerateSparsity) {
  // Fig. 2 / Fig. 6: Sputnik sits below the TC dense baseline through
  // the accuracy-relevant sparsity range. At the 95% extreme the paper
  // still reports <1x; a linear compute model concedes a modest win
  // there on large layers (see EXPERIMENTS.md deviations), so the bound
  // is loose at that point.
  const auto layers = GnmtLayers();
  const auto counts = GnmtLayerCounts();
  for (double density : {0.5, 0.25, 0.15}) {
    const auto r = EvaluateGemmModel(layers, counts, KernelClass::kSputnik,
                                     density, 32, V100());
    ASSERT_TRUE(r);
    EXPECT_LT(r->speedup, 1.05) << density;
  }
  const auto r95 = EvaluateGemmModel(layers, counts, KernelClass::kSputnik,
                                     0.05, 32, V100());
  ASSERT_TRUE(r95);
  EXPECT_LT(r95->speedup, 1.8);
}

TEST(Evaluator, Balanced24ModestOnA100) {
  // §6.2: balanced 2:4 gives only 1.07x / 1.16x on A100 at 50%.
  const auto transformer = EvaluateGemmModel(
      TransformerLayers(), TransformerLayerCounts(),
      KernelClass::kBalanced24, 0.5, 32, A100());
  ASSERT_TRUE(transformer);
  EXPECT_GT(transformer->speedup, 0.95);
  EXPECT_LT(transformer->speedup, 1.4);
  // And it is beaten by Shfl-BW V=64 at the same 50% sparsity.
  const auto shflbw = EvaluateGemmModel(
      TransformerLayers(), TransformerLayerCounts(),
      KernelClass::kShflBwTensorCore, 0.5, 64, A100());
  ASSERT_TRUE(shflbw);
  EXPECT_GT(shflbw->speedup, transformer->speedup);
}

TEST(Evaluator, ConvModelOnlyForOurKernels) {
  const auto layers = ResNet50Layers();
  EXPECT_TRUE(EvaluateConvModel(layers, KernelClass::kShflBwTensorCore, 0.25,
                                32, V100())
                  .has_value());
  EXPECT_TRUE(EvaluateConvModel(layers, KernelClass::kVectorWiseTensorCore,
                                0.25, 32, V100())
                  .has_value());
  // §6.2: "The baselines all lack implementation for convolution."
  EXPECT_FALSE(EvaluateConvModel(layers, KernelClass::kSputnik, 0.25, 32,
                                 V100())
                   .has_value());
  EXPECT_FALSE(EvaluateConvModel(layers, KernelClass::kBsrTensorCore, 0.25,
                                 32, V100())
                   .has_value());
}

TEST(Evaluator, ResNetShflBwFasterThanDense) {
  const auto r = EvaluateConvModel(ResNet50Layers(),
                                   KernelClass::kShflBwTensorCore, 0.25, 32,
                                   V100());
  ASSERT_TRUE(r);
  EXPECT_GT(r->speedup, 1.0);
}

TEST(Evaluator, ProxyQualityMonotone) {
  EXPECT_DOUBLE_EQ(ProxyQuality(27.5, 1.0, 3.0), 27.5);
  EXPECT_LT(ProxyQuality(27.5, 0.9, 3.0), 27.5);
  EXPECT_GT(ProxyQuality(27.5, 0.9, 3.0), ProxyQuality(27.5, 0.8, 3.0));
  EXPECT_THROW(ProxyQuality(27.5, 1.5, 3.0), Error);
}

TEST(Evaluator, QualityOrderingAcrossPatterns) {
  // Table 1 at the model level: Shfl-BW > VW > BW in retained score.
  std::vector<Matrix<float>> weights;
  for (int i = 0; i < 3; ++i) {
    SynthWeightOptions opt;
    opt.seed = 400 + i;
    weights.push_back(SynthesizeWeights(128, 128, opt));
  }
  PruneOptions opts;
  opts.v = 32;
  const QualityResult shflbw = EvaluateQuality(
      weights, SparsePattern::kShflBw, 0.2, opts, 27.5, 3.0);
  const QualityResult vw = EvaluateQuality(
      weights, SparsePattern::kVectorWise, 0.2, opts, 27.5, 3.0);
  const QualityResult bw = EvaluateQuality(
      weights, SparsePattern::kBlockWise, 0.2, opts, 27.5, 3.0);
  EXPECT_GT(shflbw.retained_ratio, vw.retained_ratio);
  EXPECT_GT(vw.retained_ratio, bw.retained_ratio);
  EXPECT_GT(shflbw.proxy_score, bw.proxy_score);
}

}  // namespace
}  // namespace shflbw
