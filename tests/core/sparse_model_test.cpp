#include "core/sparse_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/gemm_dense.h"

namespace shflbw {
namespace {

const GpuSpec& V100() { return GetGpuSpec(GpuArch::kV100); }

SparseLinear::Options ShflBwOpt(double density, int v) {
  SparseLinear::Options o;
  o.pattern = SparsePattern::kShflBw;
  o.density = density;
  o.v = v;
  return o;
}

TEST(SparseModel, ForwardMatchesPerLayerReference) {
  Rng rng(701);
  const Matrix<float> w1 = rng.NormalMatrix(64, 32);
  const Matrix<float> w2 = rng.NormalMatrix(16, 64);
  SparseModel model;
  model.AddLayer("fc1", w1, ShflBwOpt(0.25, 8), Activation::kRelu);
  model.AddLayer("fc2", w2, ShflBwOpt(0.25, 8), Activation::kNone);

  const Matrix<float> x = rng.NormalMatrix(32, 12);
  const Matrix<float> y = model.Forward(x);

  Matrix<float> h = GemmReference(model.layer(0).linear.pruned_weights(), x);
  for (auto& v : h.storage()) v = v > 0.0f ? v : 0.0f;
  const Matrix<float> expected =
      GemmReference(model.layer(1).linear.pruned_weights(), h);
  EXPECT_EQ(y, expected);
}

TEST(SparseModel, ShapeMismatchRejected) {
  Rng rng(709);
  SparseModel model;
  model.AddLayer("fc1", rng.NormalMatrix(64, 32), ShflBwOpt(0.25, 8));
  EXPECT_THROW(
      model.AddLayer("fc2", rng.NormalMatrix(16, 48), ShflBwOpt(0.25, 8)),
      Error);
}

TEST(SparseModel, EmptyModelRejected) {
  SparseModel model;
  EXPECT_THROW(model.Forward(Matrix<float>(4, 4)), Error);
  EXPECT_THROW(model.SpeedupOverDense(4, V100()), Error);
}

TEST(SparseModel, ModelSecondsSumsLayers) {
  Rng rng(719);
  SparseModel model;
  model.AddLayer("fc1", rng.NormalMatrix(256, 128), ShflBwOpt(0.25, 32));
  model.AddLayer("fc2", rng.NormalMatrix(128, 256), ShflBwOpt(0.25, 32));
  const double total = model.ModelSeconds(64, V100());
  const double sum = model.layer(0).linear.ModelTime(64, V100()).total_s +
                     model.layer(1).linear.ModelTime(64, V100()).total_s;
  EXPECT_DOUBLE_EQ(total, sum);
}

TEST(SparseModel, CompressionAccounting) {
  Rng rng(727);
  SparseModel model;
  model.AddLayer("fc", rng.NormalMatrix(512, 512), ShflBwOpt(0.25, 32));
  EXPECT_DOUBLE_EQ(model.DenseBytes(), 2.0 * 512 * 512);
  // ~25% of values + metadata: well under half the dense size.
  EXPECT_LT(model.CompressedBytes(), 0.5 * model.DenseBytes());
  EXPECT_GT(model.CompressedBytes(), 0.25 * 2.0 * 512 * 512);
}

TEST(SparseModel, SpeedupPositiveAtHighSparsity) {
  Rng rng(733);
  SparseModel model;
  model.AddLayer("fc1", rng.NormalMatrix(2048, 512), ShflBwOpt(0.25, 64));
  model.AddLayer("fc2", rng.NormalMatrix(512, 2048), ShflBwOpt(0.25, 64));
  EXPECT_GT(model.SpeedupOverDense(512, V100()), 1.0);
}

TEST(SparseModel, MixedPatternsPerLayer) {
  Rng rng(739);
  SparseModel model;
  SparseLinear::Options dense_opt;
  dense_opt.pattern = SparsePattern::kDense;
  dense_opt.density = 1.0;
  model.AddLayer("embed", rng.NormalMatrix(64, 32), dense_opt);
  model.AddLayer("fc", rng.NormalMatrix(32, 64), ShflBwOpt(0.5, 8),
                 Activation::kNone);
  const Matrix<float> x = rng.NormalMatrix(32, 4);
  EXPECT_EQ(model.Forward(x).rows(), 32);
  EXPECT_EQ(model.NumLayers(), 2u);
}

}  // namespace
}  // namespace shflbw
