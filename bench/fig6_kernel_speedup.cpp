// Figure 6: speedup over the dense baseline on three GPUs (V100, T4,
// A100) x three models (Transformer, GNMT, ResNet50) x sparsity levels
// {50, 75, 85, 95}% for every kernel in the paper's comparison.
//
// Notes mirrored from §6.2:
//  * baselines lack convolution, so the ResNet50 column only has the
//    dense baseline and our VW / Shfl-BW kernels;
//  * Tilewise and VectorSparse were compiled on V100 only;
//  * balanced 2:4 exists only on A100 at 50%.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/evaluator.h"
#include "model/gnmt.h"
#include "model/resnet50.h"
#include "model/transformer.h"

namespace shflbw {
namespace {

struct Row {
  const char* name;
  KernelClass klass;
  int v;
  bool v100_only;  // Tilewise / VectorSparse baselines
};

const std::vector<Row> kRows{
    {"cuSPARSE (unstr.)", KernelClass::kCsrScalar, 32, false},
    {"Sputnik (unstr.)", KernelClass::kSputnik, 32, false},
    {"VectorSparse VW,V=8", KernelClass::kVectorSparse, 8, true},
    {"Tilewise VW,V=128", KernelClass::kTilewise, 128, true},
    {"cuSPARSE BW,V=32", KernelClass::kBsrTensorCore, 32, false},
    {"cuSPARSE BW,V=64", KernelClass::kBsrTensorCore, 64, false},
    {"Ours VW,V=32", KernelClass::kVectorWiseTensorCore, 32, false},
    {"Ours VW,V=64", KernelClass::kVectorWiseTensorCore, 64, false},
    {"Shfl-BW,V=32", KernelClass::kShflBwTensorCore, 32, false},
    {"Shfl-BW,V=64", KernelClass::kShflBwTensorCore, 64, false},
    {"Balanced 2:4", KernelClass::kBalanced24, 4, false},
};

const std::vector<double> kSparsities{0.50, 0.75, 0.85, 0.95};

void PrintGemmPanel(const char* model_name,
                    const std::vector<GemmLayerSpec>& layers,
                    const std::vector<int>& counts, const GpuSpec& spec) {
  bench::Section(std::string(spec.name) + " / " + model_name);
  std::printf("%-22s", "kernel \\ sparsity");
  for (double s : kSparsities) std::printf(" %7.0f%%", s * 100);
  std::printf("\n");
  for (const Row& row : kRows) {
    if (row.v100_only && spec.arch != GpuArch::kV100) continue;
    std::printf("%-22s", row.name);
    for (double s : kSparsities) {
      const auto r = EvaluateGemmModel(layers, counts, row.klass, 1.0 - s,
                                       row.v, spec);
      std::printf(" %8s",
                  bench::Cell(r ? std::optional<double>(r->speedup)
                                : std::nullopt)
                      .c_str());
    }
    std::printf("\n");
  }
}

void PrintConvPanel(const GpuSpec& spec) {
  bench::Section(std::string(spec.name) +
                 " / ResNet50 (conv — baselines lack conv kernels)");
  std::printf("%-22s", "kernel \\ sparsity");
  for (double s : kSparsities) std::printf(" %7.0f%%", s * 100);
  std::printf("\n");
  const auto layers = ResNet50Layers();
  for (const Row& row : kRows) {
    if (row.v100_only && spec.arch != GpuArch::kV100) continue;
    std::printf("%-22s", row.name);
    for (double s : kSparsities) {
      const auto r =
          EvaluateConvModel(layers, row.klass, 1.0 - s, row.v, spec);
      std::printf(" %8s",
                  bench::Cell(r ? std::optional<double>(r->speedup)
                                : std::nullopt)
                      .c_str());
    }
    std::printf("\n");
  }
}

void Run() {
  bench::Title(
      "Figure 6 — speedup over dense baseline, 3 GPUs x 3 models\n"
      "(paper headline: Shfl-BW V=64 @75% on Transformer = 1.81x V100, "
      "4.18x T4, 1.90x A100)");
  for (const GpuSpec& spec : AllGpus()) {
    PrintGemmPanel("Transformer", TransformerLayers(),
                   TransformerLayerCounts(), spec);
    PrintGemmPanel("GNMT", GnmtLayers(), GnmtLayerCounts(), spec);
    PrintConvPanel(spec);
  }

  bench::Section("Headline check (Shfl-BW V=64, 75% sparsity, Transformer)");
  for (const GpuSpec& spec : AllGpus()) {
    const auto r =
        EvaluateGemmModel(TransformerLayers(), TransformerLayerCounts(),
                          KernelClass::kShflBwTensorCore, 0.25, 64, spec);
    std::printf("%-6s modelled %5.2fx (paper: %s)\n", spec.name.c_str(),
                r->speedup,
                spec.arch == GpuArch::kV100   ? "1.81x"
                : spec.arch == GpuArch::kT4 ? "4.18x"
                                              : "1.90x");
  }
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
