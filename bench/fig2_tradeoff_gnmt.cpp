// Figure 2: accuracy-speedup trade-off of GNMT on V100.
//
// X axis: proxy BLEU (retained-importance proxy calibrated so that the
// unstructured 80%-sparse point lands on the paper's reported BLEU; see
// EXPERIMENTS.md). Y axis: modelled speedup over the tensor-core dense
// baseline. Curves: unstructured (Sputnik), block-wise V=32, and Shfl-BW
// V=32/64/128, swept from 80% to 90% sparsity.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/evaluator.h"
#include "model/gnmt.h"
#include "model/weight_synth.h"

namespace shflbw {
namespace {

// Proxy calibration for GNMT: dense BLEU 24.6 (paper Fig. 2 axis top);
// sensitivity fit so block-wise V=32 at 80% lands on Table 1's 13.83
// (GNMT is the pattern-sensitive model). Orderings are calibration-free.
constexpr double kDenseBleu = 24.6;
constexpr double kSensitivity = 0.52;

std::vector<Matrix<float>> GnmtProxyWeights() {
  // One synthetic weight matrix per distinct GNMT layer shape, scaled
  // down 4x in each dimension to keep the search tractable while
  // preserving the V:rows ratios.
  std::vector<Matrix<float>> weights;
  int i = 0;
  for (const GemmLayerSpec& l : GnmtLayers()) {
    SynthWeightOptions opt;
    opt.seed = 7000 + i++;
    weights.push_back(SynthesizeWeights(l.m / 4, l.k / 4, opt));
  }
  return weights;
}

void Run() {
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  const auto layers = GnmtLayers();
  const auto counts = GnmtLayerCounts();
  const auto weights = GnmtProxyWeights();

  bench::Title(
      "Figure 2 — GNMT accuracy vs speedup on V100 (sparsity 80% -> 90%)\n"
      "speedup = modelled time(dense tensor-core) / time(pattern kernel)\n"
      "BLEU = retained-importance proxy (see EXPERIMENTS.md)");

  struct Curve {
    const char* name;
    SparsePattern pattern;
    int v;
  };
  const std::vector<Curve> curves{
      {"Unstructured", SparsePattern::kUnstructured, 32},
      {"Block-wise V=32", SparsePattern::kBlockWise, 32},
      {"Shfl-BW V=32", SparsePattern::kShflBw, 32},
      {"Shfl-BW V=64", SparsePattern::kShflBw, 64},
      {"Shfl-BW V=128", SparsePattern::kShflBw, 128},
  };

  std::printf("%-18s %9s %12s %12s\n", "pattern", "sparsity", "proxy-BLEU",
              "speedup");
  for (const Curve& c : curves) {
    for (double sparsity : {0.80, 0.85, 0.90}) {
      const double density = 1.0 - sparsity;
      PruneOptions popt;
      popt.v = c.v;
      const QualityResult q = EvaluateQuality(
          weights, c.pattern, density, popt, kDenseBleu, kSensitivity);
      const auto perf =
          EvaluateGemmModel(layers, counts, PatternKernelClass(c.pattern),
                            density, c.v, spec);
      std::printf("%-18s %8.0f%% %12.2f %11s\n", c.name, sparsity * 100,
                  q.proxy_score,
                  bench::Cell(perf ? std::optional<double>(perf->speedup)
                                   : std::nullopt)
                      .c_str());
    }
  }

  bench::Section("Paper's reading of Fig. 2");
  std::printf(
      "* Unstructured: best BLEU but speedup < 1 (no tensor-cores).\n"
      "* Shfl-BW achieves practical speedup (>1x) at BLEU close to "
      "unstructured.\n"
      "* Shfl-BW V=64 dominates block-wise V=32 on both axes.\n");
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
