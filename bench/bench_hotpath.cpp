// Hot-path benchmark for the parallel tiled SpMM execution engine.
//
// Times three variants of the VW-family engine on real layer shapes
// (GNMT / Transformer / ResNet50, §6.1) at several sparsities:
//   seed      the pre-optimization serial engine: fp16 stage buffers,
//             out-of-line arithmetic decode (Fp16::DecodeReference) in
//             the inner MMA loop, fresh scratch allocations per tile —
//             a faithful replica of the original RunVwFamilyKernel.
//   serial    the current engine pinned to 1 thread (fp16 decode-table
//             fast path + reusable scratch, no parallelism).
//   parallel  the current engine at the full ParallelThreadCount().
//
// All three outputs are verified bit-identical before timing is
// reported. Results go to BENCH_hotpath.json (see docs/PERFORMANCE.md).
//
// A second section tracks the convolution trajectory: ResNet50 conv
// shapes through the implicit-GEMM Conv2dShflBw kernel (serial vs
// parallel, with the dense cuDNN-style baseline for reference), so conv
// and GEMM hot paths are both covered.
//
// Flags: --smoke (tiny shape, 1 rep — CI harness check)
//        --out=FILE (default BENCH_hotpath.json)
//        --reps=N (default 3, best-of)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/fp16.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "format/vector_wise.h"
#include "kernels/conv2d.h"
#include "kernels/kernel_api.h"
#include "kernels/spmm_vector_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

/// Replica of the seed serial engine (identity row map). Kept verbatim
/// so the speedup this PR claims stays measurable against the exact
/// code it replaced: Fp16 stage buffers decoded element-by-element with
/// the out-of-line arithmetic decoder inside the MMA loop, and a fresh
/// fp32 accumulator allocated per output tile.
Matrix<float> SeedSerialVw(const VectorWiseMatrix& a, const Matrix<float>& b,
                           const TileConfig& cfg) {
  const int n = b.cols();
  const int v = a.v;
  const int tn = std::min(cfg.tn, std::max(1, n));
  Matrix<float> c(a.rows, n);
  auto slow = [](Fp16 h) { return Fp16::DecodeReference(h.bits()); };

  struct StageBuffer {
    std::vector<Fp16> a_tile;
    std::vector<Fp16> b_tile;
    int valid_k = 0;
  };
  std::vector<StageBuffer> buffers(cfg.pipeline_stages);
  for (auto& buf : buffers) {
    buf.a_tile.assign(static_cast<std::size_t>(v) * cfg.tk, Fp16());
    buf.b_tile.assign(static_cast<std::size_t>(cfg.tk) * tn, Fp16());
  }

  for (int g = 0; g < a.Groups(); ++g) {
    const int base = a.group_col_ptr[g];
    const int kept = a.KeptColumnsInGroup(g);
    const int total_step =
        static_cast<int>(std::ceil(static_cast<double>(kept) / cfg.tk));
    for (int j0 = 0; j0 < n; j0 += tn) {
      const int jw = std::min(tn, n - j0);
      std::vector<float> acc(static_cast<std::size_t>(v) * tn, 0.0f);
      int load_step = -cfg.meta_prefetch_stage;
      int step = load_step - cfg.pipeline_stages;
      int metaload_step = 0;
      while (step < total_step) {
        (void)metaload_step;
        if (step >= 0 && step < total_step) {
          const StageBuffer& buf = buffers[step % cfg.pipeline_stages];
          for (int kk = 0; kk < buf.valid_k; ++kk) {
            const Fp16* arow = &buf.a_tile[static_cast<std::size_t>(kk) * v];
            const Fp16* brow = &buf.b_tile[static_cast<std::size_t>(kk) * tn];
            for (int r = 0; r < v; ++r) {
              const float av = slow(arow[r]);
              if (av == 0.0f) continue;
              float* crow = &acc[static_cast<std::size_t>(r) * tn];
              for (int j = 0; j < jw; ++j) {
                crow[j] += av * slow(brow[j]);
              }
            }
          }
        }
        if (load_step >= 0 && load_step < total_step) {
          StageBuffer& buf = buffers[load_step % cfg.pipeline_stages];
          const int k0 = load_step * cfg.tk;
          buf.valid_k = std::min(cfg.tk, kept - k0);
          for (int kk = 0; kk < cfg.tk; ++kk) {
            const bool in_range = kk < buf.valid_k;
            const int vec = base + k0 + kk;
            for (int r = 0; r < v; ++r) {
              buf.a_tile[static_cast<std::size_t>(kk) * v + r] =
                  in_range ? Fp16(a.ValueAt(vec, r)) : Fp16();
            }
            for (int j = 0; j < tn; ++j) {
              const bool col_ok = in_range && j < jw;
              buf.b_tile[static_cast<std::size_t>(kk) * tn + j] =
                  col_ok ? Fp16(b(a.col_idx[vec], j0 + j)) : Fp16();
            }
          }
        }
        ++step;
        ++load_step;
        ++metaload_step;
      }
      for (int r = 0; r < v; ++r) {
        for (int j = 0; j < jw; ++j) {
          c(r + g * v, j0 + j) =
              slow(Fp16(acc[static_cast<std::size_t>(r) * tn + j]));
        }
      }
    }
  }
  return c;
}

struct BenchCase {
  std::string name;
  int m, k, n;
  double alpha;  // kept-vector density
};

struct Timing {
  double seed_ms = 0;
  double serial_ms = 0;
  double parallel_ms = 0;
  double flops = 0;
  bool identical = false;
};

double BestOfMs(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// A ResNet50 convolution shape driven through Conv2dShflBw.
struct ConvCase {
  std::string name;
  int in_c, hw, out_c, kernel, pad;
  double alpha;  // kept-vector density

  ConvShape Shape() const {
    ConvShape s;
    s.batch = 1;
    s.in_c = in_c;
    s.in_h = s.in_w = hw;
    s.out_c = out_c;
    s.kh = s.kw = kernel;
    s.stride = 1;
    s.pad = pad;
    return s;
  }
};

struct ConvTiming {
  double dense_ms = 0;     // Conv2dDense at full ParallelThreadCount()
  double serial_ms = 0;    // Conv2dShflBw pinned to 1 thread
  double parallel_ms = 0;  // Conv2dShflBw at full ParallelThreadCount()
  double flops = 0;        // useful sparse FLOPs
  bool identical = false;  // serial vs parallel bit-identical
};

ConvTiming RunConvCase(const ConvCase& cc, int reps, int v) {
  const ConvShape shape = cc.Shape();
  Rng rng(0xc0 + cc.in_c + cc.out_c + cc.hw);
  const Matrix<float> master = rng.NormalMatrix(shape.out_c, shape.GemmK());
  const ShflBwMatrix weights = PruneToShflBw(master, cc.alpha, v);
  Tensor4 input(shape.batch, shape.in_c, shape.in_h, shape.in_w);
  for (float& x : input.data) x = static_cast<float>(rng.Normal());
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);

  ConvTiming t;
  Matrix<float> c_dense, c_serial, c_parallel;
  t.dense_ms = BestOfMs(reps, [&] {
    c_dense = Conv2dDense(input, master, shape, spec).c;
  });
  KernelResult sparse;
  SetParallelThreads(1);
  t.serial_ms = BestOfMs(reps, [&] {
    sparse = Conv2dShflBw(input, weights, shape, spec);
  });
  c_serial = sparse.c;
  SetParallelThreads(0);
  t.parallel_ms = BestOfMs(reps, [&] {
    sparse = Conv2dShflBw(input, weights, shape, spec);
  });
  c_parallel = sparse.c;
  t.flops = sparse.stats.useful_flops;
  t.identical = c_serial == c_parallel;
  return t;
}

Timing RunCase(const BenchCase& bc, int reps, int v) {
  Rng rng(0x5eed + bc.m + bc.k + bc.n);
  const Matrix<float> pruned =
      PruneVectorWise(rng.NormalMatrix(bc.m, bc.k), bc.alpha, v);
  const VectorWiseMatrix a = VectorWiseMatrix::FromDense(pruned, v);
  const Matrix<float> b = rng.NormalMatrix(bc.k, bc.n);
  const TileConfig cfg;
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);

  Timing t;
  t.flops = 2.0 * a.KeptVectors() * v * bc.n;

  Matrix<float> c_seed, c_serial, c_parallel;
  t.seed_ms = BestOfMs(reps, [&] { c_seed = SeedSerialVw(a, b, cfg); });
  SetParallelThreads(1);
  t.serial_ms =
      BestOfMs(reps, [&] { c_serial = SpmmVectorWise(a, b, spec, cfg).c; });
  SetParallelThreads(0);
  t.parallel_ms =
      BestOfMs(reps, [&] { c_parallel = SpmmVectorWise(a, b, spec, cfg).c; });
  t.identical = c_seed == c_serial && c_serial == c_parallel;
  return t;
}

bool WriteJson(const std::string& path, const std::vector<BenchCase>& cases,
               const std::vector<Timing>& timings,
               const std::vector<ConvCase>& conv_cases,
               const std::vector<ConvTiming>& conv_timings, int threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"hotpath\",\n");
  shflbw::bench::WriteProvenance(f);
  std::fprintf(f, "  \"threads\": %d,\n", threads);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  // Baselines are only comparable at equal thread counts; flag runs
  // where the parallel columns cannot show scaling.
  std::fprintf(f, "  \"note\": \"%s\",\n",
               threads > 1
                   ? "parallel columns reflect multi-core scaling"
                   : "single-thread run: parallel_ms carries no scaling "
                     "signal; compare speedup_serial across machines, "
                     "speedup_parallel only at equal thread counts");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const BenchCase& bc = cases[i];
    const Timing& t = timings[i];
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"m\": %d, \"k\": %d, \"n\": %d, "
                 "\"alpha\": %.3f,\n"
                 "     \"seed_ms\": %.3f, \"serial_ms\": %.3f, "
                 "\"parallel_ms\": %.3f,\n"
                 "     \"seed_gflops\": %.3f, \"serial_gflops\": %.3f, "
                 "\"parallel_gflops\": %.3f,\n"
                 "     \"speedup_serial\": %.3f, \"speedup_parallel\": %.3f, "
                 "\"bit_identical\": %s}%s\n",
                 bc.name.c_str(), bc.m, bc.k, bc.n, bc.alpha, t.seed_ms,
                 t.serial_ms, t.parallel_ms, t.flops / t.seed_ms / 1e6,
                 t.flops / t.serial_ms / 1e6, t.flops / t.parallel_ms / 1e6,
                 t.seed_ms / t.serial_ms, t.seed_ms / t.parallel_ms,
                 t.identical ? "true" : "false",
                 i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"conv_results\": [\n");
  for (std::size_t i = 0; i < conv_cases.size(); ++i) {
    const ConvCase& cc = conv_cases[i];
    const ConvTiming& t = conv_timings[i];
    const ConvShape shape = cc.Shape();
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"m\": %d, \"k\": %d, \"n\": %d, "
                 "\"alpha\": %.3f,\n"
                 "     \"dense_ms\": %.3f, \"serial_ms\": %.3f, "
                 "\"parallel_ms\": %.3f,\n"
                 "     \"serial_gflops\": %.3f, \"parallel_gflops\": %.3f,\n"
                 "     \"speedup_vs_dense\": %.3f, "
                 "\"speedup_vs_serial\": %.3f, \"bit_identical\": %s}%s\n",
                 cc.name.c_str(), shape.GemmM(), shape.GemmK(),
                 shape.GemmN(), cc.alpha, t.dense_ms, t.serial_ms,
                 t.parallel_ms, t.flops / t.serial_ms / 1e6,
                 t.flops / t.parallel_ms / 1e6, t.dense_ms / t.parallel_ms,
                 t.serial_ms / t.parallel_ms, t.identical ? "true" : "false",
                 i + 1 < conv_cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int reps = 3;
  std::string out = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    else if (std::strncmp(argv[i], "--reps=", 7) == 0)
      reps = std::max(1, std::atoi(argv[i] + 7));
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<BenchCase> cases;
  std::vector<ConvCase> conv_cases;
  if (smoke) {
    reps = 1;
    cases.push_back({"smoke-256", 256, 256, 32, 0.3});
    conv_cases.push_back({"smoke-conv-32", 32, 8, 32, 3, 1, 0.3});
  } else {
    // GNMT LSTM gate / Transformer FFN / ResNet50 conv layer shapes at
    // the paper's evaluation sparsities (alpha = kept density).
    for (double alpha : {0.1, 0.3}) {
      cases.push_back({"gnmt-lstm-4096x1024", 4096, 1024, 128, alpha});
      cases.push_back({"transformer-ffn-1024x4096", 1024, 4096, 128, alpha});
      cases.push_back({"resnet50-conv-512x4608", 512, 4608, 196, alpha});
    }
    // ResNet50 stage shapes through the full implicit-GEMM conv path
    // (im2col + Shfl-BW SpMM), batch 1 to bound simulator cost.
    for (double alpha : {0.1, 0.3}) {
      conv_cases.push_back({"resnet50-conv3.3x3-28", 128, 28, 128, 3, 1,
                            alpha});
      conv_cases.push_back({"resnet50-conv4.reduce-14", 1024, 14, 256, 1, 0,
                            alpha});
    }
  }

  const int threads = ParallelThreadCount();
  std::printf("bench_hotpath: %d thread(s), %d rep(s), %zu case(s)\n",
              threads, reps, cases.size());
  std::printf("%-28s %7s %9s %9s %11s %8s %8s\n", "shape", "alpha",
              "seed_ms", "serial_ms", "parallel_ms", "ser_x", "par_x");

  std::vector<Timing> timings;
  bool all_identical = true;
  for (const BenchCase& bc : cases) {
    const Timing t = RunCase(bc, reps, /*v=*/8);
    all_identical = all_identical && t.identical;
    std::printf("%-28s %7.2f %9.2f %9.2f %11.2f %7.2fx %7.2fx%s\n",
                bc.name.c_str(), bc.alpha, t.seed_ms, t.serial_ms,
                t.parallel_ms, t.seed_ms / t.serial_ms,
                t.seed_ms / t.parallel_ms,
                t.identical ? "" : "  OUTPUT MISMATCH");
    timings.push_back(t);
  }
  std::printf("\n%-28s %7s %9s %9s %11s %8s %8s\n", "conv shape", "alpha",
              "dense_ms", "serial_ms", "parallel_ms", "dense_x", "par_x");
  std::vector<ConvTiming> conv_timings;
  for (const ConvCase& cc : conv_cases) {
    const ConvTiming t = RunConvCase(cc, reps, /*v=*/8);
    all_identical = all_identical && t.identical;
    std::printf("%-28s %7.2f %9.2f %9.2f %11.2f %7.2fx %7.2fx%s\n",
                cc.name.c_str(), cc.alpha, t.dense_ms, t.serial_ms,
                t.parallel_ms, t.dense_ms / t.parallel_ms,
                t.serial_ms / t.parallel_ms,
                t.identical ? "" : "  OUTPUT MISMATCH");
    conv_timings.push_back(t);
  }

  const bool wrote =
      WriteJson(out, cases, timings, conv_cases, conv_timings, threads);
  if (wrote) std::printf("wrote %s\n", out.c_str());
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: parallel output not bit-identical\n");
    return 1;
  }
  return wrote ? 0 : 1;
}

}  // namespace
}  // namespace shflbw

int main(int argc, char** argv) { return shflbw::Main(argc, argv); }
