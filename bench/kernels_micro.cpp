// Google-benchmark microbenchmarks of the functional kernel simulators.
// These time the CPU implementations (useful for regression-testing the
// simulator itself); the GPU performance numbers come from the cost
// model in the table benches.
#include <numeric>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "format/convert.h"
#include "kernels/conv2d.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_bsr.h"
#include "kernels/spmm_csr.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_sputnik.h"
#include "kernels/spmm_vector_wise.h"
#include "prune/block_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

constexpr int kM = 128, kN = 32, kK = 128;
constexpr double kDensity = 0.25;

const GpuSpec& Spec() { return GetGpuSpec(GpuArch::kV100); }

Matrix<float> Weights() {
  Rng rng(509);
  return rng.NormalMatrix(kM, kK);
}

Matrix<float> Activations() {
  Rng rng(521);
  return rng.NormalMatrix(kK, kN);
}

void BM_GemmReference(benchmark::State& state) {
  const Matrix<float> w = Weights();
  const Matrix<float> b = Activations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GemmReference(w, b));
  }
}
BENCHMARK(BM_GemmReference);

void BM_SpmmCsrScalar(benchmark::State& state) {
  const CsrMatrix csr =
      CsrMatrix::FromDense(PruneUnstructured(Weights(), kDensity));
  const Matrix<float> b = Activations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpmmCsrScalar(csr, b, Spec()));
  }
}
BENCHMARK(BM_SpmmCsrScalar);

void BM_SpmmSputnik(benchmark::State& state) {
  const CsrMatrix csr =
      CsrMatrix::FromDense(PruneUnstructured(Weights(), kDensity));
  const Matrix<float> b = Activations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpmmSputnik(csr, b, Spec()));
  }
}
BENCHMARK(BM_SpmmSputnik);

void BM_SpmmBsr(benchmark::State& state) {
  const BsrMatrix bsr =
      BsrMatrix::FromDense(PruneBlockWise(Weights(), kDensity, 16), 16);
  const Matrix<float> b = Activations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpmmBsr(bsr, b, Spec()));
  }
}
BENCHMARK(BM_SpmmBsr);

void BM_SpmmVectorWise(benchmark::State& state) {
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(
      PruneVectorWise(Weights(), kDensity, 16), 16);
  const Matrix<float> b = Activations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpmmVectorWise(vw, b, Spec()));
  }
}
BENCHMARK(BM_SpmmVectorWise);

void BM_SpmmShflBw(benchmark::State& state) {
  const ShflBwMatrix m = PruneToShflBw(Weights(), kDensity, 16);
  const Matrix<float> b = Activations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpmmShflBw(m, b, Spec()));
  }
}
BENCHMARK(BM_SpmmShflBw);

void BM_ShflBwSearch(benchmark::State& state) {
  const Matrix<float> w = Weights();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PruneToShflBw(w, kDensity, 16));
  }
}
BENCHMARK(BM_ShflBwSearch);

void BM_Im2Col(benchmark::State& state) {
  ConvShape s;
  s.batch = 2;
  s.in_c = 16;
  s.in_h = s.in_w = 14;
  s.out_c = 32;
  s.kh = s.kw = 3;
  s.pad = 1;
  Tensor4 input(s.batch, s.in_c, s.in_h, s.in_w);
  Rng rng(523);
  for (auto& v : input.data) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Im2Col(input, s));
  }
}
BENCHMARK(BM_Im2Col);

}  // namespace
}  // namespace shflbw

BENCHMARK_MAIN();
