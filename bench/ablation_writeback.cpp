// Ablation: cost of the reordered write-back (§4.2 / §6.2).
//
// The paper reports Shfl-BW at 0.97-1.02x of the identical vector-wise
// kernel — i.e. the row shuffle is free. Two measurements:
//  (1) modelled GPU time ratio across shapes and sparsities;
//  (2) actual CPU wall time of the functional kernels (google-benchmark),
//      which share every code path except the row_map indirection.
#include <cstdio>
#include <numeric>

#include <benchmark/benchmark.h>

#include "arch/cost_model.h"
#include "bench_util.h"
#include "common/rng.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_vector_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

void ModeledTable() {
  bench::Title(
      "Ablation — reordered write-back overhead\n"
      "(paper: Shfl-BW = 0.97-1.02x of vector-wise)");
  bench::Section("Modelled time ratio VW/Shfl-BW (V100)");
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  const CostModel model(spec);
  std::printf("%-24s %8s %8s %8s\n", "shape (MxK, N=128)", "50%", "75%",
              "90%");
  struct Shape {
    int m, k;
  };
  for (const Shape& s : {Shape{1024, 1024}, Shape{4096, 1024},
                         Shape{2048, 2048}, Shape{4096, 4096}}) {
    std::printf("%6dx%-6d V=64      ", s.m, s.k);
    for (double sparsity : {0.5, 0.75, 0.9}) {
      const double vw = model.Seconds(
          SpmmVectorWiseStats(s.m, 128, s.k, 1 - sparsity, 64, spec));
      const double sb = model.Seconds(
          SpmmShflBwStats(s.m, 128, s.k, 1 - sparsity, 64, spec));
      std::printf(" %7.3fx", vw / sb);
    }
    std::printf("\n");
  }
}

// Functional-kernel wall time: identical engine, row_map identity vs
// shuffled. Any systematic gap would indicate the write-back costs.
void BM_VectorWiseKernel(benchmark::State& state) {
  Rng rng(431);
  const Matrix<float> w = rng.NormalMatrix(128, 256);
  const Matrix<float> pruned = PruneVectorWise(w, 0.25, 32);
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(pruned, 32);
  const Matrix<float> b = rng.NormalMatrix(256, 64);
  std::vector<int> identity(128);
  std::iota(identity.begin(), identity.end(), 0);
  TileConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunVwFamilyKernel(vw, identity, b, cfg, nullptr));
  }
}
BENCHMARK(BM_VectorWiseKernel);

void BM_ShflBwKernel(benchmark::State& state) {
  Rng rng(431);
  const Matrix<float> w = rng.NormalMatrix(128, 256);
  const ShflBwMatrix m = PruneToShflBw(w, 0.25, 32);
  const Matrix<float> b = rng.NormalMatrix(256, 64);
  TileConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunVwFamilyKernel(m.vw, m.storage_to_original, b, cfg, nullptr));
  }
}
BENCHMARK(BM_ShflBwKernel);

}  // namespace
}  // namespace shflbw

int main(int argc, char** argv) {
  shflbw::ModeledTable();
  shflbw::bench::Section("Functional-kernel wall time (CPU simulator)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
