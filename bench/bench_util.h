// Shared formatting helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

namespace shflbw::bench {

inline void Title(const std::string& t) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", t.c_str());
  std::printf("================================================================\n");
}

inline void Section(const std::string& t) {
  std::printf("\n--- %s ---\n", t.c_str());
}

/// Prints "  n/a" or a fixed-width speedup like " 2.31x".
inline std::string Cell(const std::optional<double>& v) {
  char buf[32];
  if (!v) return "   n/a";
  std::snprintf(buf, sizeof(buf), "%5.2fx", *v);
  return buf;
}

}  // namespace shflbw::bench
