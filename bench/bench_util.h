// Shared formatting helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "common/build_info.h"
#include "common/thread_pool.h"
#include "obs/json_escape.h"

namespace shflbw::bench {

inline void Title(const std::string& t) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", t.c_str());
  std::printf("================================================================\n");
}

inline void Section(const std::string& t) {
  std::printf("\n--- %s ---\n", t.c_str());
}

/// Prints "  n/a" or a fixed-width speedup like " 2.31x".
inline std::string Cell(const std::optional<double>& v) {
  char buf[32];
  if (!v) return "   n/a";
  std::snprintf(buf, sizeof(buf), "%5.2fx", *v);
  return buf;
}

/// Emits the `"provenance": {...},` member every BENCH_*.json carries
/// (called right after the opening `{ "bench": ... }` line): build sha,
/// compiler, flags, SHFLBW_OBS state and the resolved thread count, so
/// tools/benchdiff can label the two runs it compares and a regression
/// report says what built each side. Keys under provenance never gate
/// (benchdiff's default rules ignore them).
inline void WriteProvenance(std::FILE* f) {
  const BuildInfo& bi = GetBuildInfo();
  std::fprintf(f, "  \"provenance\": {\n");
  std::fprintf(f, "    \"git_sha\": \"%s\",\n",
               obs::JsonEscape(bi.git_sha).c_str());
  std::fprintf(f, "    \"compiler\": \"%s\",\n",
               obs::JsonEscape(bi.compiler).c_str());
  std::fprintf(f, "    \"build_type\": \"%s\",\n",
               obs::JsonEscape(bi.build_type).c_str());
  std::fprintf(f, "    \"cxx_flags\": \"%s\",\n",
               obs::JsonEscape(bi.cxx_flags).c_str());
  std::fprintf(f, "    \"cxx_standard\": %ld,\n", bi.cxx_standard);
  std::fprintf(f, "    \"obs_compiled_in\": %s,\n",
               bi.obs_compiled_in ? "true" : "false");
  std::fprintf(f, "    \"threads\": %d\n", ParallelThreadCount());
  std::fprintf(f, "  },\n");
}

}  // namespace shflbw::bench
