// Batch-serving benchmark: the scale-out analogue of bench_e2e.
//
// Serves M whole-model inference requests (distinct activation seeds)
// through a BatchServer and sweeps the three serving knobs: replica
// count (how many Engine instances share the partitioned worker pool),
// batch size (how many requests are kept in flight at once), and fused
// width (max_batch — how many queued requests a replica coalesces into
// one RunBatched launch). Reports throughput and p50/p99 request
// latency per configuration, the 1-replica vs N-replica scaling curve,
// the fused vs unfused comparison, and verifies that every served
// output is bit-identical to a serial single-engine run of the same
// seed — neither concurrency nor fusion may change a single bit of any
// answer.
//
// An overload section then drives the same server shape open-loop
// (Poisson arrivals with a burst phase at a multiple of measured
// capacity, every request deadline-bearing) twice: once with a
// single-level quality plan (no degradation possible) and once with a
// degradation ladder, on the identical seeded arrival schedule. It
// reports shed/late/miss fractions and the degradation engagement
// curve, and gates — in --smoke too — that the controller actually
// engaged the ladder, that the ladder run's miss fraction is strictly
// lower than the no-degradation baseline, that every served response's
// retained_ratio honours its level's floor, and that spot-checked
// outputs are bit-identical to a single-engine run at that level.
//
// An observability section then (a) measures serving throughput with
// telemetry fully off vs metrics + tracing on (interleaved paired
// rounds on one pre-warmed server, flipping the runtime telemetry
// toggles) and gates — in --smoke too — that enabled stays within 2%
// of disabled by at least one of two noise-robust estimators
// (best-round ratio, median paired ratio), and (b) drives one traced
// server through a retried, a shed, and a degraded request, writing
// BENCH_serving_trace.json (Chrome trace-event format, loadable in
// Perfetto / chrome://tracing) and BENCH_serving_metrics.prom
// (Prometheus exposition), gating that every span kind appears and
// that at least one run span is degraded and one retried.
//
// Flags: --smoke (tiny config, few requests — CI harness check)
//        --out=FILE (default BENCH_serving.json)
//        --requests=N (default 32 per configuration)
//        --gpu=V100|T4|A100 (planner cost model, default V100)
//        --density=A (kept density, default 0.25)
//        --v=N (vector/block granularity, default 8)
//
// Exit status: non-zero if any output mismatches the serial reference;
// if, outside --smoke on a >=2-core box, the best multi-replica
// throughput fails to strictly beat the best single-replica throughput;
// if, outside --smoke on a >=2-core box, fused serving (max_batch
// >= 8) at in-flight batch >= 8 fails to at least match the best
// unfused (max_batch = 1) throughput; or if any overload gate above
// fails (overload gates run in --smoke as well).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "quality/quality_planner.h"
#include "runtime/server.h"

namespace shflbw {
namespace runtime {
namespace {

struct ConfigResult {
  int replicas = 1;
  int batch = 1;
  int max_batch = 1;  // fused width cap (1 = unfused serving)
  int requests = 0;
  double wall_seconds = 0;
  double throughput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  int max_fused_width = 0;  // widest launch actually observed
  bool bit_identical = true;
};

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

std::uint64_t SeedOf(int i) {
  return 0xbeadULL + static_cast<std::uint64_t>(i);
}

/// Serves `requests` seeds through a fresh warmed server, keeping at
/// most `batch` in flight, and checks outputs against `ref`.
ConfigResult ServeConfig(const ModelDesc& model, const ServerOptions& opts,
                         int batch, int requests,
                         const std::map<std::uint64_t, Matrix<float>>& ref) {
  ConfigResult r;
  r.replicas = opts.replicas;
  r.batch = batch;
  r.max_batch = opts.max_batch;
  r.requests = requests;

  BatchServer server(model, opts);
  server.Warmup();  // pack phase excluded from serving measurements

  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(requests));
  const double t0 = NowSeconds();
  for (int submitted = 0; submitted < requests;) {
    const int wave = std::min(batch, requests - submitted);
    std::vector<std::future<Response>> futures;
    futures.reserve(static_cast<std::size_t>(wave));
    for (int i = 0; i < wave; ++i) {
      Request req;
      req.activation_seed = SeedOf(submitted + i);
      futures.push_back(server.Submit(req));
    }
    for (int i = 0; i < wave; ++i) {
      Response resp = futures[static_cast<std::size_t>(i)].get();
      latencies_ms.push_back(
          (resp.queue_seconds + resp.retry_seconds + resp.run_seconds) * 1e3);
      r.max_fused_width = std::max(r.max_fused_width, resp.batch_width);
      if (resp.output != ref.at(SeedOf(submitted + i))) {
        r.bit_identical = false;
      }
    }
    submitted += wave;
  }
  r.wall_seconds = NowSeconds() - t0;
  r.throughput_rps =
      r.wall_seconds > 0 ? requests / r.wall_seconds : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  r.p50_ms = Percentile(latencies_ms, 0.50);
  r.p99_ms = Percentile(latencies_ms, 0.99);
  return r;
}

struct FusionSummary {
  double unfused_rps = 0;  // best max_batch=1 config at batch >= kFusedBatch
  double fused_rps = 0;    // best max_batch>1 config at batch >= kFusedBatch
  int fused_width = 0;     // max_batch of the best fused config
};

/// Observability-overhead measurement: interleaved closed-loop rounds
/// on ONE pre-warmed server, flipping the runtime telemetry toggles
/// (Telemetry::set_metrics / set_tracing) between telemetry fully off
/// and metrics + tracing on. Using a single server matters: two
/// separately constructed servers differ by a few percent run-to-run
/// from allocation/layout luck alone, which is the same order as the
/// 2% overhead budget being gated. The same engines, weights, and
/// threads serve both configurations, so the only difference each
/// round is the telemetry hot path itself.
struct ObsOverhead {
  double disabled_rps = 0;   // best round, telemetry off
  double enabled_rps = 0;    // best round, telemetry on
  double best_ratio = 0;     // enabled_rps / disabled_rps
  double median_ratio = 0;   // median over rounds of paired (enabled/disabled)
  double ratio = 0;          // max(best_ratio, median_ratio) — the gated value
};

ObsOverhead MeasureObservabilityOverhead(const ModelDesc& model,
                                         const ServerOptions& base,
                                         int requests, int rounds) {
  ServerOptions opts = base;
  opts.replicas = 2;
  opts.max_batch = 4;
  opts.queue_capacity = 64;
  opts.telemetry.metrics = true;
  opts.telemetry.tracing = true;
  opts.telemetry.trace_capacity = 1 << 16;  // ample: no drops mid-measurement

  BatchServer server(model, opts);
  server.Warmup();

  const auto round = [&](bool telemetry_on) {
    server.telemetry().set_metrics(telemetry_on);
    server.telemetry().set_tracing(telemetry_on);
    std::vector<std::future<Response>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    const double t0 = NowSeconds();
    for (int i = 0; i < requests; ++i) {
      Request req;
      req.activation_seed = SeedOf(i);
      futures.push_back(server.Submit(req));
    }
    for (auto& f : futures) (void)f.get();
    return requests / std::max(1e-9, NowSeconds() - t0);
  };

  // Two estimators of the same overhead, with opposite failure modes
  // on a host with ambient competing load:
  //
  //  - best_ratio compares each configuration's best round. Since
  //    interference is one-sided (a competitor only ever slows a
  //    closed loop down), the best of many short rounds estimates the
  //    uncontended rate; rounds are short and numerous precisely so
  //    each configuration lands at least one clean round. Fooled only
  //    if one side never gets a clean round.
  //  - median_ratio is the median of back-to-back paired ratios
  //    (order alternating so a periodic competitor cannot phase-lock
  //    with the pair cadence). Robust to any single bad round, but
  //    biased if a competitor stays resident for most of the
  //    measurement.
  //
  // A real telemetry regression moves both. The gate trips only when
  // both agree (ratio = max of the two), which keeps it strict in
  // expectation and quiet under noise.
  (void)round(false);  // settle after warmup before the first timed round
  ObsOverhead r;
  std::vector<double> ratios;
  ratios.reserve(static_cast<std::size_t>(rounds));
  for (int i = 0; i < rounds; ++i) {
    const bool off_first = (i % 2) == 0;
    const double first = round(/*telemetry_on=*/!off_first);
    const double second = round(/*telemetry_on=*/off_first);
    const double d = off_first ? first : second;
    const double e = off_first ? second : first;
    r.disabled_rps = std::max(r.disabled_rps, d);
    r.enabled_rps = std::max(r.enabled_rps, e);
    ratios.push_back(d > 0 ? e / d : 0.0);
  }
  std::sort(ratios.begin(), ratios.end());
  r.best_ratio = r.disabled_rps > 0 ? r.enabled_rps / r.disabled_rps : 0.0;
  r.median_ratio = ratios[ratios.size() / 2];
  r.ratio = std::max(r.best_ratio, r.median_ratio);
  return r;
}

/// Span census of the annotated trace scenario, plus the artifact
/// write verdicts the exit-code gate checks.
struct TraceScenario {
  std::size_t spans = 0;
  std::size_t queue = 0;
  std::size_t coalesce = 0;
  std::size_t kernel = 0;
  std::size_t retry = 0;
  std::size_t shed = 0;
  std::size_t run = 0;
  bool degraded_run = false;  // >= 1 run span served at level > 0
  bool retried_run = false;   // >= 1 run span with retries > 0
  bool wrote_trace = false;
  bool wrote_metrics = false;
  bool wrote_status = false;  // BENCH_serving_statusz.{txt,json}
  bool wrote_flight = false;  // BENCH_serving_flight.json
};

/// Drives one server through all three interesting request fates with
/// tracing on — retried (fault budget on the first launches), shed
/// (expired deadline held past the coalesce window), degraded (burst
/// against delayed launches walks the ladder down) — then dumps the
/// Chrome trace and the Prometheus exposition as committed artifacts.
TraceScenario RunTraceScenario(const ModelDesc& model,
                               const ServerOptions& base,
                               const std::string& trace_path,
                               const std::string& metrics_path) {
  FaultInjectorOptions fi;
  fi.launch_failure_rate = 1.0;
  fi.max_failures = 2;  // the first batch retries exactly twice, then quiet
  fi.launch_delay_rate = 1.0;
  fi.launch_delay_seconds = 0.005;  // every launch drags: the burst queues up
  ServerOptions opts = base;
  opts.replicas = 1;
  opts.max_batch = 4;
  opts.queue_capacity = 8;
  opts.coalesce_window_seconds = 0.02;
  opts.engine.fault_injector = std::make_shared<FaultInjector>(fi);
  opts.retry.max_retries = 4;
  opts.retry.backoff_seconds = 1e-4;
  opts.degradation.ladder_floors = {0.95, 0.70};
  opts.degradation.degrade_queue_fraction = 0.5;
  opts.degradation.hysteresis_seals = 1;
  // The doomed request must reach the queue to be shed at seal — with
  // the service estimate warm, admission would bounce it up front.
  opts.admission.reject_infeasible_deadlines = false;
  opts.telemetry.tracing = true;
  opts.telemetry.trace_capacity = 1 << 16;
  // No Warmup: the launch-fault budget must land on serving launches so
  // the trace shows a retried request.
  BatchServer server(model, opts);

  // Fate 1 — retried: the first fused batch eats the whole fault budget.
  {
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 4; ++i) {
      Request req;
      req.activation_seed = SeedOf(i);
      futures.push_back(server.Submit(req));
    }
    for (auto& f : futures) (void)f.get();
  }
  // Fate 2 — shed: an already-expired deadline held past the window.
  {
    Request doomed;
    doomed.deadline_seconds = 1e-6;
    std::future<Response> doomed_fut = server.Submit(doomed);
    std::future<Response> live_fut = server.Submit(Request{});
    (void)doomed_fut.get();
    (void)live_fut.get();
  }
  // Fate 3 — degraded: bursts deeper than degrade_queue_fraction of the
  // queue while every launch drags 5 ms. Bounded repeats because the
  // submit thread races the (slow) replica for queue occupancy.
  for (int attempt = 0; attempt < 5 && server.Stats().downshifts == 0;
       ++attempt) {
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 12; ++i) {
      Request req;
      req.activation_seed = SeedOf(100 + i);
      futures.push_back(server.Submit(req));
    }
    for (auto& f : futures) (void)f.get();
  }
  server.Drain();

  TraceScenario r;
  const std::vector<obs::TraceEvent> events =
      server.telemetry().trace().Snapshot();
  r.spans = events.size();
  for (const obs::TraceEvent& ev : events) {
    switch (ev.kind) {
      case obs::SpanKind::kQueue: ++r.queue; break;
      case obs::SpanKind::kCoalesce: ++r.coalesce; break;
      case obs::SpanKind::kKernel: ++r.kernel; break;
      case obs::SpanKind::kRetry: ++r.retry; break;
      case obs::SpanKind::kShed: ++r.shed; break;
      case obs::SpanKind::kRun:
        ++r.run;
        r.degraded_run = r.degraded_run || ev.level > 0;
        r.retried_run = r.retried_run || ev.retries > 0;
        break;
      default: break;
    }
  }
  r.wrote_trace = server.DumpTrace(trace_path);
  std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
  if (mf != nullptr) {
    const std::string text = server.MetricsText();
    r.wrote_metrics = std::fwrite(text.data(), 1, text.size(), mf) ==
                      text.size();
    std::fclose(mf);
  }
  // The operator-facing snapshot of the same eventful run: statusz
  // (both renderings) and the flight-recorder ring, committed as CI
  // artifacts next to the trace so reviewers can see what the dumps
  // look like after retries, sheds and a ladder walk.
  r.wrote_status = server.DumpStatus("BENCH_serving_statusz");
  r.wrote_flight = server.DumpFlightRecorder("BENCH_serving_flight.json");
  return r;
}

/// One open-loop overload run (fixed seeded arrival schedule).
struct OverloadResult {
  int arrivals = 0;
  int completed = 0;       // served with an output
  int shed = 0;            // admitted, deadline-expired at seal
  int rejected = 0;        // TrySubmit refused (queue full)
  int late = 0;            // served, but after the deadline
  double miss_fraction = 0;  // (shed + rejected + late) / arrivals
  int max_level = 0;       // deepest ladder level any response ran at
  std::uint64_t downshifts = 0;
  std::uint64_t upshifts = 0;
  std::vector<std::uint64_t> per_level;
  /// plan_level per arrival in submission order; -1 = rejected at
  /// admission, -2 = shed. The degradation engagement curve.
  std::vector<int> curve;
  bool quality_honored = true;  // every retained_ratio >= its level floor
  bool bit_identical = true;    // spot checks vs per-level serial engines
};

/// Mean per-request service seconds of a packed single engine — the
/// yardstick the overload arrival rates and deadlines are scaled by, so
/// the scenario stresses the server equally on fast and slow hosts.
double CalibrateServiceSeconds(const ModelDesc& model,
                               const EngineOptions& engine_opts) {
  Engine engine(model, engine_opts);
  (void)engine.Run();  // pack phase
  const int kRuns = 5;
  const double t0 = NowSeconds();
  for (int i = 0; i < kRuns; ++i) (void)engine.Run(SeedOf(i));
  return std::max(1e-6, (NowSeconds() - t0) / kRuns);
}

/// Measured closed-loop throughput (rps) of the overload server config
/// at its baseline ladder level — the capacity yardstick the burst
/// rates are scaled off. The naive replicas/svc estimate badly
/// overstates real capacity when service times are sub-millisecond
/// (per-request scheduling overhead dominates) or when the host has
/// fewer cores than replicas, and a burst scaled off a 2-5x
/// overestimate drowns baseline and ladder alike, erasing the margin
/// the degradation gate measures.
double CalibrateCapacityRps(const ModelDesc& model, const ServerOptions& base) {
  ServerOptions opts = base;
  opts.degradation.ladder_floors = {0.95};
  BatchServer server(model, opts);
  server.Warmup();
  constexpr int kRequests = 64;
  constexpr int kRounds = 2;
  // A closed-loop round can only under-measure capacity (interference
  // slows it, nothing speeds it up), so the max over rounds is the
  // robust estimate.
  double best = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<Response>> futures;
    futures.reserve(kRequests);
    const double t0 = NowSeconds();
    for (int i = 0; i < kRequests; ++i) {
      Request req;
      req.activation_seed = SeedOf(i);
      futures.push_back(server.Submit(req));  // blocking: closed loop
    }
    for (auto& f : futures) (void)f.get();
    const double wall = std::max(1e-9, NowSeconds() - t0);
    best = std::max(best, kRequests / wall);
  }
  return best;
}

/// Seeded Poisson arrival offsets: `pre` arrivals at pre_rate, `burst`
/// at burst_rate, `post` back at pre_rate (seconds from t0).
std::vector<double> ArrivalSchedule(int pre, int burst, int post,
                                    double pre_rate, double burst_rate) {
  Rng rng(0xa331ULL);
  std::vector<double> offsets;
  offsets.reserve(static_cast<std::size_t>(pre + burst + post));
  double t = 0;
  const auto emit = [&](int n, double rate) {
    for (int i = 0; i < n; ++i) {
      t += -std::log(1.0 - rng.Uniform()) / rate;
      offsets.push_back(t);
    }
  };
  emit(pre, pre_rate);
  emit(burst, burst_rate);
  emit(post, pre_rate);
  return offsets;
}

/// Drives one open-loop overload run: submits the arrival schedule with
/// TrySubmit (an open-loop client does not block — a full queue is a
/// rejection), every request carrying `deadline`, then audits the
/// responses against the ladder's floors and per-level reference
/// engines. `floors` with one entry = the no-degradation baseline.
OverloadResult ServeOverload(const ModelDesc& model, const ServerOptions& base,
                             const std::vector<double>& floors,
                             const std::vector<double>& arrivals,
                             double deadline_seconds) {
  ServerOptions opts = base;
  opts.degradation.ladder_floors = floors;
  opts.degradation.degrade_queue_fraction = 0.5;
  opts.degradation.upgrade_queue_fraction = 0.125;
  opts.degradation.hysteresis_seals = 2;
  // Shedding and degradation do the overload work here; up-front
  // infeasibility rejection would empty the burst before the ladder
  // ever sees pressure.
  opts.admission.reject_infeasible_deadlines = false;

  OverloadResult r;
  r.arrivals = static_cast<int>(arrivals.size());
  r.curve.assign(arrivals.size(), -1);

  std::vector<std::future<Response>> futures(arrivals.size());
  std::vector<char> accepted(arrivals.size(), 0);
  {
    BatchServer server(model, opts);
    server.Warmup();

    const double t0 = NowSeconds();
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      const double target = t0 + arrivals[i];
      const double now = NowSeconds();
      if (target > now) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(target - now));
      }
      Request req;
      req.activation_seed = SeedOf(static_cast<int>(i));
      req.deadline_seconds = deadline_seconds;
      accepted[i] =
          server.TrySubmit(req, &futures[i]) == SubmitStatus::kAccepted ? 1
                                                                        : 0;
    }
    server.Drain();

    const ServerStats stats = server.Stats();
    r.downshifts = stats.downshifts;
    r.upshifts = stats.upshifts;
    r.per_level = stats.per_level;

    // Per-level serial reference engines for bit-identity spot checks
    // (a handful per level — full coverage is the sweep's job above).
    std::vector<std::unique_ptr<Engine>> refs;
    for (const PlannerOptions& po :
         quality::LadderPlannerOptions(base.engine.planner, floors)) {
      EngineOptions eo = base.engine;
      eo.planner = po;
      refs.push_back(std::make_unique<Engine>(model, eo));
    }
    std::vector<int> checked_per_level(floors.size(), 0);
    constexpr int kChecksPerLevel = 2;

    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      if (!accepted[i]) {
        ++r.rejected;
        continue;
      }
      Response resp = futures[i].get();
      if (resp.status == ResponseStatus::kDeadlineExceeded) {
        ++r.shed;
        r.curve[i] = -2;
        continue;
      }
      ++r.completed;
      r.curve[i] = resp.plan_level;
      r.max_level = std::max(r.max_level, resp.plan_level);
      if (resp.queue_seconds + resp.retry_seconds + resp.run_seconds >
          deadline_seconds) {
        ++r.late;
      }
      if (resp.retained_ratio + 1e-12 <
          floors[static_cast<std::size_t>(resp.plan_level)]) {
        r.quality_honored = false;
      }
      int& checks = checked_per_level[static_cast<std::size_t>(resp.plan_level)];
      if (checks < kChecksPerLevel) {
        ++checks;
        const auto& ref = refs[static_cast<std::size_t>(resp.plan_level)];
        if (resp.output != ref->Run(SeedOf(static_cast<int>(i))).output) {
          r.bit_identical = false;
        }
      }
    }
  }
  r.miss_fraction =
      r.arrivals > 0
          ? static_cast<double>(r.shed + r.rejected + r.late) / r.arrivals
          : 0.0;
  return r;
}

/// Folds trial `t` into the aggregate `agg`: counters add, flags AND,
/// the engagement curve keeps the latest trial (one representative
/// trace is enough for the JSON). Miss fraction is recomputed over the
/// summed counts, which is what the exit-code gate compares — single
/// short bursts at sub-millisecond service times are too noisy to gate
/// on individually.
void Accumulate(OverloadResult& agg, const OverloadResult& t) {
  agg.arrivals += t.arrivals;
  agg.completed += t.completed;
  agg.shed += t.shed;
  agg.rejected += t.rejected;
  agg.late += t.late;
  agg.downshifts += t.downshifts;
  agg.upshifts += t.upshifts;
  agg.max_level = std::max(agg.max_level, t.max_level);
  if (agg.per_level.size() < t.per_level.size()) {
    agg.per_level.resize(t.per_level.size(), 0);
  }
  for (std::size_t i = 0; i < t.per_level.size(); ++i) {
    agg.per_level[i] += t.per_level[i];
  }
  agg.curve = t.curve;
  agg.quality_honored = agg.quality_honored && t.quality_honored;
  agg.bit_identical = agg.bit_identical && t.bit_identical;
  agg.miss_fraction =
      agg.arrivals > 0
          ? static_cast<double>(agg.shed + agg.rejected + agg.late) /
                agg.arrivals
          : 0.0;
}

void PrintOverload(const char* name, const OverloadResult& r) {
  std::printf("  %-9s %4d arrivals: %4d ok, %3d shed, %3d rejected, %3d "
              "late -> miss %.3f; max level %d (%llu down / %llu up)%s%s\n",
              name, r.arrivals, r.completed, r.shed, r.rejected, r.late,
              r.miss_fraction, r.max_level,
              static_cast<unsigned long long>(r.downshifts),
              static_cast<unsigned long long>(r.upshifts),
              r.quality_honored ? "" : "  FLOOR VIOLATED",
              r.bit_identical ? "" : "  OUTPUT MISMATCH");
}

void WriteOverloadJson(std::FILE* f, const char* name,
                       const OverloadResult& r, bool trailing_comma) {
  std::fprintf(f,
               "    \"%s\": {\"arrivals\": %d, \"completed\": %d, "
               "\"shed\": %d, \"rejected\": %d, \"late\": %d, "
               "\"miss_fraction\": %.4f, \"max_level\": %d, "
               "\"downshifts\": %llu, \"upshifts\": %llu, "
               "\"quality_honored\": %s, \"bit_identical\": %s,\n",
               name, r.arrivals, r.completed, r.shed, r.rejected, r.late,
               r.miss_fraction, r.max_level,
               static_cast<unsigned long long>(r.downshifts),
               static_cast<unsigned long long>(r.upshifts),
               r.quality_honored ? "true" : "false",
               r.bit_identical ? "true" : "false");
  std::fprintf(f, "      \"per_level\": [");
  for (std::size_t i = 0; i < r.per_level.size(); ++i) {
    std::fprintf(f, "%s%llu", i ? ", " : "",
                 static_cast<unsigned long long>(r.per_level[i]));
  }
  // The engagement curve: plan level per arrival in submission order
  // (-1 rejected at admission, -2 shed at seal) — how far and how long
  // the controller walked down the ladder through the burst.
  // Run-length encoded as [value, count] pairs: the curve is long runs
  // of a single level by construction, so RLE keeps the committed
  // baselines compact without losing the level-walk structure.
  std::fprintf(f, "],\n      \"engagement_curve_rle\": [");
  bool first_run = true;
  for (std::size_t i = 0; i < r.curve.size();) {
    std::size_t j = i;
    while (j < r.curve.size() && r.curve[j] == r.curve[i]) ++j;
    std::fprintf(f, "%s[%d, %zu]", first_run ? "" : ", ", r.curve[i], j - i);
    first_run = false;
    i = j;
  }
  std::fprintf(f, "]}%s\n", trailing_comma ? "," : "");
}

bool WriteJson(const std::string& path, const ModelDesc& model,
               const std::string& config, const ServerOptions& base,
               int requests, const std::vector<ConfigResult>& results,
               double single_rps, double multi_rps, int multi_replicas,
               const FusionSummary& fusion, double svc_seconds,
               double deadline_seconds, const OverloadResult& baseline,
               const OverloadResult& degraded, const ObsOverhead& obs,
               const TraceScenario& trace, const std::string& trace_path,
               const std::string& metrics_path, bool all_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n");
  shflbw::bench::WriteProvenance(f);
  std::fprintf(f, "  \"model\": \"%s\",\n  \"config\": \"%s\",\n",
               model.name.c_str(), config.c_str());
  std::fprintf(f, "  \"gpu\": \"%s\",\n",
               GetGpuSpec(base.engine.planner.arch).name.c_str());
  std::fprintf(f, "  \"density\": %.3f,\n  \"v\": %d,\n",
               base.engine.planner.density, base.engine.planner.v);
  std::fprintf(f, "  \"threads\": %d,\n", ParallelThreadCount());
  std::fprintf(f, "  \"requests_per_config\": %d,\n", requests);
  std::fprintf(f, "  \"note\": \"throughput is closed-loop with `batch` "
               "requests in flight; max_batch is the fused width cap "
               "(1 = one launch per request); latency is "
               "submit-to-completion; every output is compared against a "
               "serial single-engine run of the same seed\",\n");
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(f,
                 "    {\"replicas\": %d, \"batch\": %d, \"max_batch\": %d, "
                 "\"requests\": %d, "
                 "\"wall_s\": %.4f, \"throughput_rps\": %.3f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"max_fused_width\": %d, "
                 "\"bit_identical\": %s}%s\n",
                 r.replicas, r.batch, r.max_batch, r.requests,
                 r.wall_seconds, r.throughput_rps, r.p50_ms, r.p99_ms,
                 r.max_fused_width,
                 r.bit_identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Fused vs unfused at serving load (in-flight batch >= 8): the
  // cross-request batching claim. Enforced by exit code on >=2-core
  // hosts outside --smoke; reported everywhere.
  std::fprintf(f, "  \"fusion\": {\"unfused_rps\": %.3f, "
               "\"fused_rps\": %.3f, \"fused_max_batch\": %d, "
               "\"fused_vs_unfused_speedup\": %.3f},\n",
               fusion.unfused_rps, fusion.fused_rps, fusion.fused_width,
               fusion.unfused_rps > 0 ? fusion.fused_rps / fusion.unfused_rps
                                      : 0.0);
  // The >=2-partition scaling claim is only measurable with >=2 cores:
  // on a 1-core box every configuration time-slices and the curve is
  // flat-to-negative by construction. CI runs this binary on a
  // multi-core runner, where the exit code enforces multi > single.
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  std::fprintf(f, "  \"scaling\": {\"single_replica_rps\": %.3f, "
               "\"best_multi_replica_rps\": %.3f, "
               "\"best_multi_replicas\": %d, "
               "\"multi_vs_single_speedup\": %.3f, "
               "\"cores\": %d, \"partitions_available\": %s},\n",
               single_rps, multi_rps, multi_replicas,
               single_rps > 0 ? multi_rps / single_rps : 0.0, cores,
               cores >= 2 ? "true" : "false");
  // Open-loop overload: identical seeded arrival schedule served with
  // and without a degradation ladder; the miss-fraction delta is the
  // graceful-degradation claim, gated by exit code (--smoke included).
  std::fprintf(f, "  \"overload\": {\n");
  std::fprintf(f,
               "    \"service_ms\": %.4f, \"deadline_ms\": %.4f,\n",
               svc_seconds * 1e3, deadline_seconds * 1e3);
  WriteOverloadJson(f, "baseline", baseline, /*trailing_comma=*/true);
  WriteOverloadJson(f, "ladder", degraded, /*trailing_comma=*/false);
  std::fprintf(f, "  },\n");
  // Observability: the overhead gate's two throughputs (the gate trips
  // when BOTH the best-round and the median-paired enabled/disabled
  // ratios fall below 0.98 — exit-code enforced, --smoke included) and
  // the span census of the annotated trace scenario whose Chrome trace
  // + Prometheus dump are written next to this file.
  std::fprintf(f, "  \"observability\": {\n");
  std::fprintf(f,
               "    \"disabled_rps\": %.3f, \"enabled_rps\": %.3f, "
               "\"best_round_ratio\": %.4f, \"median_paired_ratio\": %.4f,\n",
               obs.disabled_rps, obs.enabled_rps, obs.best_ratio,
               obs.median_ratio);
  std::fprintf(f,
               "    \"trace_file\": \"%s\", \"metrics_file\": \"%s\",\n",
               trace_path.c_str(), metrics_path.c_str());
  std::fprintf(f,
               "    \"trace_spans\": {\"total\": %zu, \"queue\": %zu, "
               "\"coalesce\": %zu, \"kernel\": %zu, \"retry\": %zu, "
               "\"shed\": %zu, \"run\": %zu},\n",
               trace.spans, trace.queue, trace.coalesce, trace.kernel,
               trace.retry, trace.shed, trace.run);
  std::fprintf(f,
               "    \"degraded_run_span\": %s, \"retried_run_span\": %s\n",
               trace.degraded_run ? "true" : "false",
               trace.retried_run ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"bit_identical\": %s\n}\n",
               all_identical ? "true" : "false");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int requests = 32;
  std::string out = "BENCH_serving.json";
  ServerOptions base;
  base.engine.planner.density = 0.25;
  base.engine.planner.v = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    else if (std::strncmp(argv[i], "--requests=", 11) == 0)
      requests = std::max(1, std::atoi(argv[i] + 11));
    else if (std::strncmp(argv[i], "--gpu=", 6) == 0)
      base.engine.planner.arch = ParseGpuArch(argv[i] + 6);
    else if (std::strncmp(argv[i], "--density=", 10) == 0)
      base.engine.planner.density = std::atof(argv[i] + 10);
    else if (std::strncmp(argv[i], "--v=", 4) == 0)
      base.engine.planner.v = std::max(1, std::atoi(argv[i] + 4));
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (smoke) requests = std::min(requests, 8);

  // Small GEMM layers on purpose: per-kernel parallelism is limited at
  // serving shapes, so request-level parallelism (replicas on disjoint
  // pool partitions) is where the remaining cores come from — the
  // regime the BatchServer exists for.
  TransformerConfig cfg{64, 256, 32, 1, 1};
  std::string config = "d_model=64,d_ff=256,tokens=32,enc=1,dec=1";
  if (smoke) {
    cfg = TransformerConfig{32, 64, 16, 1, 1};
    config = "d_model=32,d_ff=64,tokens=16,enc=1,dec=1";
  }
  const ModelDesc model = ModelDesc::Transformer(cfg);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("bench_serving: %s (%s), %d request(s)/config, %d core(s)\n",
              model.name.c_str(), config.c_str(), requests, hw);

  // Serial reference outputs, one per seed: the determinism yardstick
  // every served response is compared against bit-for-bit.
  std::map<std::uint64_t, Matrix<float>> ref;
  {
    SetParallelThreads(1);
    Engine engine(model, base.engine);
    for (int i = 0; i < requests; ++i) {
      ref.emplace(SeedOf(i), engine.Run(SeedOf(i)).output);
    }
    SetParallelThreads(0);  // back to env/auto for the serving sweeps
  }

  // The in-flight batch size at which the fused-vs-unfused comparison
  // (and its CI gate) is made.
  constexpr int kFusedBatch = 8;
  std::vector<int> replica_counts = {1, 2, 4};
  std::vector<int> batches = smoke ? std::vector<int>{4}
                                   : std::vector<int>{1, 8, 32};
  // Fused width sweep: 1 = classic per-request launches (the PR 3
  // baseline), 8 = coalesce up to 8 queued requests into one wide
  // launch per layer.
  std::vector<int> fuse_widths = smoke ? std::vector<int>{1, 4}
                                       : std::vector<int>{1, 8};
  std::vector<ConfigResult> results;
  std::printf("\n  %8s %6s %6s %10s %12s %10s %10s %10s\n", "replicas",
              "batch", "fuse", "requests", "wall_s", "rps", "p50_ms",
              "p99_ms");
  for (int replicas : replica_counts) {
    for (int batch : batches) {
      for (int fuse : fuse_widths) {
        ServerOptions opts = base;
        opts.replicas = replicas;
        opts.max_batch = fuse;
        opts.queue_capacity =
            std::max<std::size_t>(64, static_cast<std::size_t>(batch));
        results.push_back(ServeConfig(model, opts, batch, requests, ref));
        const ConfigResult& r = results.back();
        std::printf("  %8d %6d %6d %10d %12.4f %10.2f %10.3f %10.3f%s\n",
                    r.replicas, r.batch, r.max_batch, r.requests,
                    r.wall_seconds, r.throughput_rps, r.p50_ms, r.p99_ms,
                    r.bit_identical ? "" : "  OUTPUT MISMATCH");
      }
    }
  }

  bool all_identical = true;
  double single_rps = 0, multi_rps = 0;
  int multi_replicas = 0;
  FusionSummary fusion;
  for (const ConfigResult& r : results) {
    all_identical = all_identical && r.bit_identical;
    // Replica scaling is compared like-for-like on UNFUSED configs
    // (max_batch == 1, the PR 3 baseline): fusion changes per-launch
    // width, so mixing widths here would let a single-replica fused
    // config masquerade as a replica-scaling regression.
    if (r.max_batch == 1) {
      if (r.replicas == 1) {
        single_rps = std::max(single_rps, r.throughput_rps);
      } else if (r.throughput_rps > multi_rps) {
        multi_rps = r.throughput_rps;
        multi_replicas = r.replicas;
      }
    }
    // Fused-vs-unfused is compared at serving load: enough requests in
    // flight (batch >= kFusedBatch) that coalescing has material to
    // work with.
    if (r.batch >= kFusedBatch || smoke) {
      if (r.max_batch == 1) {
        fusion.unfused_rps = std::max(fusion.unfused_rps, r.throughput_rps);
      } else if (r.throughput_rps > fusion.fused_rps) {
        fusion.fused_rps = r.throughput_rps;
        fusion.fused_width = r.max_batch;
      }
    }
  }
  std::printf("\n  scaling: single-replica %.2f rps, best multi-replica "
              "%.2f rps (x%d replicas) -> %.2fx\n",
              single_rps, multi_rps, multi_replicas,
              single_rps > 0 ? multi_rps / single_rps : 0.0);
  std::printf("  fusion:  unfused %.2f rps, fused %.2f rps (max_batch %d) "
              "-> %.2fx\n",
              fusion.unfused_rps, fusion.fused_rps, fusion.fused_width,
              fusion.unfused_rps > 0 ? fusion.fused_rps / fusion.unfused_rps
                                     : 0.0);

  // ---- Overload: burst arrivals, deadlines, graceful degradation ----
  // Rates and deadlines scale off the measured per-request service
  // time, so the burst overcommits the server by the same factor on any
  // host. The baseline run uses a single-level ladder (the controller
  // cannot move); the ladder run may degrade down to floor 0.70. Both
  // serve the identical seeded arrival schedule.
  ServerOptions over = base;
  over.replicas = 2;
  over.max_batch = 4;
  over.queue_capacity = 16;
  // The overload section always runs the full-size model (the smoke
  // sweep model's ~0.1 ms kernels are smaller than the per-request
  // scheduling overhead, which dilutes the ladder's kernel-speed
  // advantage into the noise floor and makes the gates flaky).
  const ModelDesc over_model =
      ModelDesc::Transformer(TransformerConfig{64, 256, 32, 1, 1});
  const double svc = CalibrateServiceSeconds(over_model, base.engine);
  const double capacity_rps = CalibrateCapacityRps(over_model, over);
  // Effective per-request seconds at measured capacity; the deadline
  // tolerates a half-full queue's worth of waiting (the same point the
  // controller's degrade_queue_fraction 0.5 fires), so lateness and
  // degradation pressure track the same signal.
  const double eff = 1.0 / capacity_rps;
  const double deadline =
      0.5 * static_cast<double>(over.queue_capacity) * eff;
  const int pre = smoke ? 15 : 30;
  const int burst = smoke ? 100 : 150;
  const int post = smoke ? 15 : 30;
  // The burst rate targets the band between baseline capacity (1.0x)
  // and the fully degraded ladder's capacity (~1.3x: floor 0.70
  // compiles to all-CSR and runs ~25% faster than the dense level-0
  // plan). In that band the ladder, once downshifted, holds its queue
  // near steady state while the fixed-quality baseline's backlog grows
  // for the whole burst — the structural margin the miss-fraction gate
  // measures. Rates above the ladder's capacity drown both configs and
  // the gate ends up comparing scheduler noise.
  const double burst_rps = 1.4 * capacity_rps;
  const std::vector<double> schedule =
      ArrivalSchedule(pre, burst, post, 0.5 * capacity_rps, burst_rps);
  // Interleaved trials, aggregated for the gate: a single short burst
  // at sub-millisecond service times is dominated by scheduler noise;
  // the summed counts over alternating baseline/ladder runs are not.
  constexpr int kTrials = 3;
  std::printf("\n  overload: svc %.3f ms, capacity %.0f rps, deadline "
              "%.3f ms, burst %.0f rps (1.4x capacity) for %d of %d "
              "arrivals, %d trial(s)/config\n",
              svc * 1e3, capacity_rps, deadline * 1e3, burst_rps, burst,
              static_cast<int>(schedule.size()), kTrials);
  OverloadResult over_base;
  OverloadResult over_ladder;
  for (int t = 0; t < kTrials; ++t) {
    Accumulate(over_base,
               ServeOverload(over_model, over, {0.95}, schedule, deadline));
    Accumulate(over_ladder, ServeOverload(over_model, over, {0.95, 0.85, 0.70},
                                          schedule, deadline));
  }
  PrintOverload("baseline", over_base);
  PrintOverload("ladder", over_ladder);

  // ---- Observability: overhead gate + annotated trace artifacts ----
  // One pre-warmed server, runtime-toggled telemetry, interleaved
  // paired rounds: the telemetry hot path (sharded counter adds + span
  // ring writes) must cost less than 2% of serving throughput, or
  // enabling it in production is not an honest default. Measured on
  // the full-size model even in smoke — the smoke sweep model's
  // ~0.1 ms requests put a 2% margin inside scheduler noise, which
  // would make the gate flaky, not strict.
  // The 2% budget the gate enforces (shared with the re-measure
  // confirmation below and the FAIL branch at the end).
  constexpr double kObsOverheadFloor = 0.98;
  ObsOverhead obs =
      MeasureObservabilityOverhead(over_model, base, /*requests=*/80,
                                   /*rounds=*/16);
  if (obs.ratio < kObsOverheadFloor) {
    // Confirm before failing: a saturated runner can swamp both
    // estimators at once, but that state rarely survives two full
    // measurements. A real regression reproduces.
    std::printf("\n  observability: ratio %.4f below %.2f, re-measuring "
                "to confirm\n", obs.ratio, kObsOverheadFloor);
    obs = MeasureObservabilityOverhead(over_model, base, /*requests=*/80,
                                       /*rounds=*/16);
  }
  std::printf("\n  observability: disabled %.2f rps, enabled %.2f rps "
              "-> %.4fx (best %.4f, median-paired %.4f)\n",
              obs.disabled_rps, obs.enabled_rps, obs.ratio,
              obs.best_ratio, obs.median_ratio);
  const std::string trace_path = "BENCH_serving_trace.json";
  const std::string metrics_path = "BENCH_serving_metrics.prom";
  const TraceScenario trace =
      RunTraceScenario(over_model, base, trace_path, metrics_path);
  std::printf("  trace: %zu spans (%zu queue, %zu coalesce, %zu kernel, "
              "%zu retry, %zu shed, %zu run); degraded run %s, retried "
              "run %s\n",
              trace.spans, trace.queue, trace.coalesce, trace.kernel,
              trace.retry, trace.shed, trace.run,
              trace.degraded_run ? "yes" : "NO", trace.retried_run ? "yes"
                                                                   : "NO");

  const bool wrote = WriteJson(out, model, config, base, requests, results,
                               single_rps, multi_rps, multi_replicas, fusion,
                               svc, deadline, over_base, over_ladder, obs,
                               trace, trace_path, metrics_path,
                               all_identical);
  if (wrote) std::printf("\nwrote %s\n", out.c_str());

  bool ok = wrote;
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: served outputs diverged from the serial "
                 "reference\n");
    ok = false;
  }
  // Acceptance: with >=2 worker partitions available, multi-replica
  // throughput must strictly beat single-replica. Smoke shapes are too
  // small for a stable margin, so the check runs on the full config.
  if (!smoke && hw >= 2 && multi_rps <= single_rps) {
    std::fprintf(stderr, "FAIL: multi-replica throughput (%.2f rps) did "
                 "not beat single-replica (%.2f rps)\n",
                 multi_rps, single_rps);
    ok = false;
  }
  // Acceptance: fused serving at batch >= 8 must not regress below
  // unfused on a multi-core host (same smoke caveat as above).
  if (!smoke && hw >= 2 && fusion.fused_rps < fusion.unfused_rps) {
    std::fprintf(stderr, "FAIL: fused throughput (%.2f rps, max_batch %d) "
                 "regressed below unfused (%.2f rps) at batch >= %d\n",
                 fusion.fused_rps, fusion.fused_width, fusion.unfused_rps,
                 kFusedBatch);
    ok = false;
  }
  // Overload gates — deliberately active in --smoke too (CI runs the
  // smoke config on every PR): the scenario is scaled off measured
  // service time, so it stresses equally on any host.
  if (over_ladder.max_level < 1 || over_ladder.downshifts < 1) {
    std::fprintf(stderr, "FAIL: the burst never engaged the degradation "
                 "ladder (max level %d, %llu downshifts)\n",
                 over_ladder.max_level,
                 static_cast<unsigned long long>(over_ladder.downshifts));
    ok = false;
  }
  if (over_ladder.miss_fraction >= over_base.miss_fraction) {
    std::fprintf(stderr, "FAIL: degradation did not reduce the miss "
                 "fraction (ladder %.3f vs baseline %.3f)\n",
                 over_ladder.miss_fraction, over_base.miss_fraction);
    ok = false;
  }
  if (!over_base.quality_honored || !over_ladder.quality_honored) {
    std::fprintf(stderr, "FAIL: a served response's retained_ratio fell "
                 "below its plan level's floor\n");
    ok = false;
  }
  if (!over_base.bit_identical || !over_ladder.bit_identical) {
    std::fprintf(stderr, "FAIL: a degraded output diverged from the serial "
                 "single-engine run at its level\n");
    ok = false;
  }
  // Observability gates — active in --smoke too. The overhead budget is
  // the tentpole claim: full telemetry (metrics + tracing) within 2% of
  // telemetry off.
  if (obs.ratio < kObsOverheadFloor) {
    std::fprintf(stderr, "FAIL: telemetry-enabled throughput fell below "
                 "%.0f%% of disabled by both estimators (best-round "
                 "ratio %.4f, median paired ratio %.4f; best rounds: "
                 "enabled %.2f rps, disabled %.2f rps)\n",
                 kObsOverheadFloor * 100, obs.best_ratio,
                 obs.median_ratio, obs.enabled_rps, obs.disabled_rps);
    ok = false;
  }
  // Span-census gates only apply when spans exist: at SHFLBW_OBS=0 the
  // recorder compiles to a no-op and the dumped trace is (correctly)
  // empty.
  if constexpr (shflbw::obs::kCompiledIn) {
    if (trace.queue == 0 || trace.coalesce == 0 || trace.kernel == 0 ||
        trace.retry == 0 || trace.shed == 0 || trace.run == 0) {
      std::fprintf(stderr, "FAIL: trace scenario missing a span kind "
                   "(queue %zu, coalesce %zu, kernel %zu, retry %zu, "
                   "shed %zu, run %zu)\n",
                   trace.queue, trace.coalesce, trace.kernel, trace.retry,
                   trace.shed, trace.run);
      ok = false;
    }
    if (!trace.degraded_run || !trace.retried_run) {
      std::fprintf(stderr, "FAIL: trace scenario lacks a %s run span\n",
                   !trace.degraded_run ? "degraded (level > 0)"
                                       : "retried (retries > 0)");
      ok = false;
    }
  }
  if (!trace.wrote_trace || !trace.wrote_metrics) {
    std::fprintf(stderr, "FAIL: could not write %s\n",
                 !trace.wrote_trace ? "the Chrome trace dump"
                                    : "the Prometheus metrics dump");
    ok = false;
  }
  if (!trace.wrote_status || !trace.wrote_flight) {
    std::fprintf(stderr, "FAIL: could not write %s\n",
                 !trace.wrote_status ? "the statusz dump"
                                     : "the flight-recorder dump");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw

int main(int argc, char** argv) { return shflbw::runtime::Main(argc, argv); }
