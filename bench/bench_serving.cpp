// Batch-serving benchmark: the scale-out analogue of bench_e2e.
//
// Serves M whole-model inference requests (distinct activation seeds)
// through a BatchServer and sweeps the three serving knobs: replica
// count (how many Engine instances share the partitioned worker pool),
// batch size (how many requests are kept in flight at once), and fused
// width (max_batch — how many queued requests a replica coalesces into
// one RunBatched launch). Reports throughput and p50/p99 request
// latency per configuration, the 1-replica vs N-replica scaling curve,
// the fused vs unfused comparison, and verifies that every served
// output is bit-identical to a serial single-engine run of the same
// seed — neither concurrency nor fusion may change a single bit of any
// answer.
//
// Flags: --smoke (tiny config, few requests — CI harness check)
//        --out=FILE (default BENCH_serving.json)
//        --requests=N (default 32 per configuration)
//        --gpu=V100|T4|A100 (planner cost model, default V100)
//        --density=A (kept density, default 0.25)
//        --v=N (vector/block granularity, default 8)
//
// Exit status: non-zero if any output mismatches the serial reference;
// if, outside --smoke on a >=2-core box, the best multi-replica
// throughput fails to strictly beat the best single-replica throughput;
// or if, outside --smoke on a >=2-core box, fused serving (max_batch
// >= 8) at in-flight batch >= 8 fails to at least match the best
// unfused (max_batch = 1) throughput.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "runtime/server.h"

namespace shflbw {
namespace runtime {
namespace {

struct ConfigResult {
  int replicas = 1;
  int batch = 1;
  int max_batch = 1;  // fused width cap (1 = unfused serving)
  int requests = 0;
  double wall_seconds = 0;
  double throughput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  int max_fused_width = 0;  // widest launch actually observed
  bool bit_identical = true;
};

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

std::uint64_t SeedOf(int i) {
  return 0xbeadULL + static_cast<std::uint64_t>(i);
}

/// Serves `requests` seeds through a fresh warmed server, keeping at
/// most `batch` in flight, and checks outputs against `ref`.
ConfigResult ServeConfig(const ModelDesc& model, const ServerOptions& opts,
                         int batch, int requests,
                         const std::map<std::uint64_t, Matrix<float>>& ref) {
  ConfigResult r;
  r.replicas = opts.replicas;
  r.batch = batch;
  r.max_batch = opts.max_batch;
  r.requests = requests;

  BatchServer server(model, opts);
  server.Warmup();  // pack phase excluded from serving measurements

  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(requests));
  const double t0 = NowSeconds();
  for (int submitted = 0; submitted < requests;) {
    const int wave = std::min(batch, requests - submitted);
    std::vector<std::future<Response>> futures;
    futures.reserve(static_cast<std::size_t>(wave));
    for (int i = 0; i < wave; ++i) {
      Request req;
      req.activation_seed = SeedOf(submitted + i);
      futures.push_back(server.Submit(req));
    }
    for (int i = 0; i < wave; ++i) {
      Response resp = futures[static_cast<std::size_t>(i)].get();
      latencies_ms.push_back((resp.queue_seconds + resp.run_seconds) * 1e3);
      r.max_fused_width = std::max(r.max_fused_width, resp.batch_width);
      if (resp.output != ref.at(SeedOf(submitted + i))) {
        r.bit_identical = false;
      }
    }
    submitted += wave;
  }
  r.wall_seconds = NowSeconds() - t0;
  r.throughput_rps =
      r.wall_seconds > 0 ? requests / r.wall_seconds : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  r.p50_ms = Percentile(latencies_ms, 0.50);
  r.p99_ms = Percentile(latencies_ms, 0.99);
  return r;
}

struct FusionSummary {
  double unfused_rps = 0;  // best max_batch=1 config at batch >= kFusedBatch
  double fused_rps = 0;    // best max_batch>1 config at batch >= kFusedBatch
  int fused_width = 0;     // max_batch of the best fused config
};

bool WriteJson(const std::string& path, const ModelDesc& model,
               const std::string& config, const ServerOptions& base,
               int requests, const std::vector<ConfigResult>& results,
               double single_rps, double multi_rps, int multi_replicas,
               const FusionSummary& fusion, bool all_identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"model\": \"%s\",\n  \"config\": \"%s\",\n",
               model.name.c_str(), config.c_str());
  std::fprintf(f, "  \"gpu\": \"%s\",\n",
               GetGpuSpec(base.engine.planner.arch).name.c_str());
  std::fprintf(f, "  \"density\": %.3f,\n  \"v\": %d,\n",
               base.engine.planner.density, base.engine.planner.v);
  std::fprintf(f, "  \"threads\": %d,\n", ParallelThreadCount());
  std::fprintf(f, "  \"requests_per_config\": %d,\n", requests);
  std::fprintf(f, "  \"note\": \"throughput is closed-loop with `batch` "
               "requests in flight; max_batch is the fused width cap "
               "(1 = one launch per request); latency is "
               "submit-to-completion; every output is compared against a "
               "serial single-engine run of the same seed\",\n");
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(f,
                 "    {\"replicas\": %d, \"batch\": %d, \"max_batch\": %d, "
                 "\"requests\": %d, "
                 "\"wall_s\": %.4f, \"throughput_rps\": %.3f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"max_fused_width\": %d, "
                 "\"bit_identical\": %s}%s\n",
                 r.replicas, r.batch, r.max_batch, r.requests,
                 r.wall_seconds, r.throughput_rps, r.p50_ms, r.p99_ms,
                 r.max_fused_width,
                 r.bit_identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Fused vs unfused at serving load (in-flight batch >= 8): the
  // cross-request batching claim. Enforced by exit code on >=2-core
  // hosts outside --smoke; reported everywhere.
  std::fprintf(f, "  \"fusion\": {\"unfused_rps\": %.3f, "
               "\"fused_rps\": %.3f, \"fused_max_batch\": %d, "
               "\"fused_vs_unfused_speedup\": %.3f},\n",
               fusion.unfused_rps, fusion.fused_rps, fusion.fused_width,
               fusion.unfused_rps > 0 ? fusion.fused_rps / fusion.unfused_rps
                                      : 0.0);
  // The >=2-partition scaling claim is only measurable with >=2 cores:
  // on a 1-core box every configuration time-slices and the curve is
  // flat-to-negative by construction. CI runs this binary on a
  // multi-core runner, where the exit code enforces multi > single.
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  std::fprintf(f, "  \"scaling\": {\"single_replica_rps\": %.3f, "
               "\"best_multi_replica_rps\": %.3f, "
               "\"best_multi_replicas\": %d, "
               "\"multi_vs_single_speedup\": %.3f, "
               "\"cores\": %d, \"partitions_available\": %s},\n",
               single_rps, multi_rps, multi_replicas,
               single_rps > 0 ? multi_rps / single_rps : 0.0, cores,
               cores >= 2 ? "true" : "false");
  std::fprintf(f, "  \"bit_identical\": %s\n}\n",
               all_identical ? "true" : "false");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int requests = 32;
  std::string out = "BENCH_serving.json";
  ServerOptions base;
  base.engine.planner.density = 0.25;
  base.engine.planner.v = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    else if (std::strncmp(argv[i], "--requests=", 11) == 0)
      requests = std::max(1, std::atoi(argv[i] + 11));
    else if (std::strncmp(argv[i], "--gpu=", 6) == 0)
      base.engine.planner.arch = ParseGpuArch(argv[i] + 6);
    else if (std::strncmp(argv[i], "--density=", 10) == 0)
      base.engine.planner.density = std::atof(argv[i] + 10);
    else if (std::strncmp(argv[i], "--v=", 4) == 0)
      base.engine.planner.v = std::max(1, std::atoi(argv[i] + 4));
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (smoke) requests = std::min(requests, 8);

  // Small GEMM layers on purpose: per-kernel parallelism is limited at
  // serving shapes, so request-level parallelism (replicas on disjoint
  // pool partitions) is where the remaining cores come from — the
  // regime the BatchServer exists for.
  TransformerConfig cfg{64, 256, 32, 1, 1};
  std::string config = "d_model=64,d_ff=256,tokens=32,enc=1,dec=1";
  if (smoke) {
    cfg = TransformerConfig{32, 64, 16, 1, 1};
    config = "d_model=32,d_ff=64,tokens=16,enc=1,dec=1";
  }
  const ModelDesc model = ModelDesc::Transformer(cfg);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("bench_serving: %s (%s), %d request(s)/config, %d core(s)\n",
              model.name.c_str(), config.c_str(), requests, hw);

  // Serial reference outputs, one per seed: the determinism yardstick
  // every served response is compared against bit-for-bit.
  std::map<std::uint64_t, Matrix<float>> ref;
  {
    SetParallelThreads(1);
    Engine engine(model, base.engine);
    for (int i = 0; i < requests; ++i) {
      ref.emplace(SeedOf(i), engine.Run(SeedOf(i)).output);
    }
    SetParallelThreads(0);  // back to env/auto for the serving sweeps
  }

  // The in-flight batch size at which the fused-vs-unfused comparison
  // (and its CI gate) is made.
  constexpr int kFusedBatch = 8;
  std::vector<int> replica_counts = {1, 2, 4};
  std::vector<int> batches = smoke ? std::vector<int>{4}
                                   : std::vector<int>{1, 8, 32};
  // Fused width sweep: 1 = classic per-request launches (the PR 3
  // baseline), 8 = coalesce up to 8 queued requests into one wide
  // launch per layer.
  std::vector<int> fuse_widths = smoke ? std::vector<int>{1, 4}
                                       : std::vector<int>{1, 8};
  std::vector<ConfigResult> results;
  std::printf("\n  %8s %6s %6s %10s %12s %10s %10s %10s\n", "replicas",
              "batch", "fuse", "requests", "wall_s", "rps", "p50_ms",
              "p99_ms");
  for (int replicas : replica_counts) {
    for (int batch : batches) {
      for (int fuse : fuse_widths) {
        ServerOptions opts = base;
        opts.replicas = replicas;
        opts.max_batch = fuse;
        opts.queue_capacity =
            std::max<std::size_t>(64, static_cast<std::size_t>(batch));
        results.push_back(ServeConfig(model, opts, batch, requests, ref));
        const ConfigResult& r = results.back();
        std::printf("  %8d %6d %6d %10d %12.4f %10.2f %10.3f %10.3f%s\n",
                    r.replicas, r.batch, r.max_batch, r.requests,
                    r.wall_seconds, r.throughput_rps, r.p50_ms, r.p99_ms,
                    r.bit_identical ? "" : "  OUTPUT MISMATCH");
      }
    }
  }

  bool all_identical = true;
  double single_rps = 0, multi_rps = 0;
  int multi_replicas = 0;
  FusionSummary fusion;
  for (const ConfigResult& r : results) {
    all_identical = all_identical && r.bit_identical;
    // Replica scaling is compared like-for-like on UNFUSED configs
    // (max_batch == 1, the PR 3 baseline): fusion changes per-launch
    // width, so mixing widths here would let a single-replica fused
    // config masquerade as a replica-scaling regression.
    if (r.max_batch == 1) {
      if (r.replicas == 1) {
        single_rps = std::max(single_rps, r.throughput_rps);
      } else if (r.throughput_rps > multi_rps) {
        multi_rps = r.throughput_rps;
        multi_replicas = r.replicas;
      }
    }
    // Fused-vs-unfused is compared at serving load: enough requests in
    // flight (batch >= kFusedBatch) that coalescing has material to
    // work with.
    if (r.batch >= kFusedBatch || smoke) {
      if (r.max_batch == 1) {
        fusion.unfused_rps = std::max(fusion.unfused_rps, r.throughput_rps);
      } else if (r.throughput_rps > fusion.fused_rps) {
        fusion.fused_rps = r.throughput_rps;
        fusion.fused_width = r.max_batch;
      }
    }
  }
  std::printf("\n  scaling: single-replica %.2f rps, best multi-replica "
              "%.2f rps (x%d replicas) -> %.2fx\n",
              single_rps, multi_rps, multi_replicas,
              single_rps > 0 ? multi_rps / single_rps : 0.0);
  std::printf("  fusion:  unfused %.2f rps, fused %.2f rps (max_batch %d) "
              "-> %.2fx\n",
              fusion.unfused_rps, fusion.fused_rps, fusion.fused_width,
              fusion.unfused_rps > 0 ? fusion.fused_rps / fusion.unfused_rps
                                     : 0.0);

  const bool wrote = WriteJson(out, model, config, base, requests, results,
                               single_rps, multi_rps, multi_replicas,
                               fusion, all_identical);
  if (wrote) std::printf("\nwrote %s\n", out.c_str());

  bool ok = wrote;
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: served outputs diverged from the serial "
                 "reference\n");
    ok = false;
  }
  // Acceptance: with >=2 worker partitions available, multi-replica
  // throughput must strictly beat single-replica. Smoke shapes are too
  // small for a stable margin, so the check runs on the full config.
  if (!smoke && hw >= 2 && multi_rps <= single_rps) {
    std::fprintf(stderr, "FAIL: multi-replica throughput (%.2f rps) did "
                 "not beat single-replica (%.2f rps)\n",
                 multi_rps, single_rps);
    ok = false;
  }
  // Acceptance: fused serving at batch >= 8 must not regress below
  // unfused on a multi-core host (same smoke caveat as above).
  if (!smoke && hw >= 2 && fusion.fused_rps < fusion.unfused_rps) {
    std::fprintf(stderr, "FAIL: fused throughput (%.2f rps, max_batch %d) "
                 "regressed below unfused (%.2f rps) at batch >= %d\n",
                 fusion.fused_rps, fusion.fused_width, fusion.unfused_rps,
                 kFusedBatch);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw

int main(int argc, char** argv) { return shflbw::runtime::Main(argc, argv); }
