// Extension beyond the paper's evaluation (§7): "given the recent trend
// of adding tensor-core-like units in processors to boost DNN workloads
// (AMD GPU [18], Intel CPU [19]), we expect our methodology and
// practice to have wider applications beyond NVIDIA GPUs."
//
// Projects the Shfl-BW methodology onto an AMD CDNA1-class GPU and an
// Intel AMX-class CPU socket using the same traffic models; kernel
// efficiencies assume V100-maturity software (a stated assumption —
// these are projections, not measurements).
#include <cstdio>

#include "bench_util.h"
#include "core/evaluator.h"
#include "model/gnmt.h"
#include "model/transformer.h"

namespace shflbw {
namespace {

void Panel(const GpuSpec& spec) {
  bench::Section(spec.name + " — projected speedup over its own dense "
                             "matrix-unit baseline");
  std::printf("matrix-unit peak %.0f TFLOPS, DRAM %.0f GB/s, "
              "compute:BW ratio %.0f flop/byte\n",
              spec.tensor_core_flops / 1e12, spec.dram_bandwidth / 1e9,
              spec.ComputeToBandwidthRatio());
  std::printf("%-14s %8s %8s %8s %8s\n", "model \\ spars.", "50%", "75%",
              "85%", "95%");
  struct Row {
    const char* name;
    std::vector<GemmLayerSpec> layers;
    std::vector<int> counts;
  };
  const Row rows[2] = {
      {"Transformer", TransformerLayers(), TransformerLayerCounts()},
      {"GNMT", GnmtLayers(), GnmtLayerCounts()},
  };
  for (const Row& r : rows) {
    std::printf("%-14s", r.name);
    for (double sparsity : {0.50, 0.75, 0.85, 0.95}) {
      const auto res =
          EvaluateGemmModel(r.layers, r.counts,
                            KernelClass::kShflBwTensorCore, 1.0 - sparsity,
                            64, spec);
      std::printf(" %7.2fx", res->speedup);
    }
    std::printf("\n");
  }
}

void Run() {
  bench::Title(
      "Extension — Shfl-BW projected onto tensor-core-like units beyond "
      "NVIDIA (§7)\nProjections assume V100-maturity kernel software; "
      "see EXPERIMENTS.md.");
  for (const GpuSpec& spec : ExtensionAccelerators()) {
    Panel(spec);
  }
  bench::Section("Reading");
  std::printf(
      "* The methodology transfers: both targets show the same "
      "sparsity-speedup shape.\n"
      "* AMX's low compute:BW ratio mirrors the T4 situation — larger "
      "headroom for weight sparsity.\n");
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
