// Ablation: importance criterion fed to the §5 search. The search is
// score-agnostic; this compares magnitude (the paper's choice), pure
// first-order Taylor (|w * dL/dw| from a real backward pass), and a
// 50/50 blend — measured as actual test accuracy of the pruned MLP
// before any fine-tuning (the criterion's own merit).
#include <cstdio>

#include "bench_util.h"
#include "nn/trainer.h"
#include "prune/importance.h"
#include "prune/shfl_bw_search.h"
#include "prune/taylor_importance.h"

namespace shflbw {
namespace {

void Run() {
  bench::Title(
      "Ablation — importance criterion for the Shfl-BW search (§5 is "
      "score-agnostic)");

  nn::DatasetOptions dopt;
  dopt.num_classes = 8;
  dopt.dim = 32;
  dopt.train_per_class = 120;
  dopt.test_per_class = 40;
  const nn::Dataset data = nn::MakeClusterDataset(dopt);

  nn::TrainOptions topt;
  topt.epochs = 25;
  topt.batch_size = 48;

  std::printf("%-22s %10s %10s\n", "criterion", "75% spar.", "85% spar.");
  for (int criterion = 0; criterion < 3; ++criterion) {
    const char* name = criterion == 0   ? "magnitude |w|"
                       : criterion == 1 ? "taylor |w*g|"
                                        : "blend 50/50";
    std::printf("%-22s", name);
    for (double sparsity : {0.75, 0.85}) {
      nn::Mlp model({32, 96, 96, 8}, /*seed=*/123);
      nn::Trainer trainer(model, data);
      trainer.Train(topt);

      // One scoring backward pass over the full training set.
      const nn::LossResult lr = nn::SoftmaxCrossEntropy(
          model.Forward(data.train_x), data.train_y);
      model.Backward(lr.grad_logits);

      for (nn::Linear* layer : model.PrunableLayers()) {
        Matrix<float> scores;
        switch (criterion) {
          case 0: scores = MagnitudeScores(layer->weights()); break;
          case 1:
            scores = TaylorScores(layer->weights(), layer->grad_weights());
            break;
          default:
            scores = BlendedScores(layer->weights(),
                                   layer->grad_weights(), 0.5);
        }
        layer->SetMask(ShflBwSearch(scores, 1.0 - sparsity, 16).mask);
        layer->grad_weights() = Matrix<float>(layer->weights().rows(),
                                              layer->weights().cols());
      }
      std::printf(" %9.1f%%", trainer.TestAccuracy() * 100);
    }
    std::printf("\n");
  }

  bench::Section("Reading");
  std::printf(
      "* The search composes with any importance signal unchanged — the "
      "point of §5\n  taking 'the importance scores of all weights' as "
      "input.\n"
      "* At a converged model, gradients are small and noisy, so plain "
      "magnitude\n  (the paper's choice) remains the strongest one-shot "
      "criterion here;\n  gradient-aware scores matter more when pruning "
      "mid-training.\n");
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
