// §3.2.2 / §2.1 analysis: operation intensity (data reuse) of each
// sparse pattern, and the tensor-core MACs-per-loaded-value requirement
// (the paper's "63 MACs" figure for A100).
#include <cmath>
#include <cstdio>

#include "arch/intensity.h"
#include "bench_util.h"

namespace shflbw {
namespace {

void Run() {
  bench::Title("§3.2.2 — operation-intensity analysis");

  bench::Section("MACs per LLC-loaded value to reach peak tensor-core");
  for (const GpuSpec& spec : AllGpus()) {
    std::printf("%-6s %.0f MACs/value %s\n", spec.name.c_str(),
                spec.MacsPerLlcValue(),
                spec.arch == GpuArch::kA100 ? "(paper: 63)" : "");
  }

  for (const GpuSpec& spec : AllGpus()) {
    const double budget = RegfileAccumulators(spec);
    const double dense = DenseMaxReuse(budget).flop_per_byte;
    bench::Section(spec.name + " — max reuse (flop/byte), regfile budget " +
                   std::to_string(static_cast<int>(budget)));
    std::printf("T_opt (dense tile edge) = %.0f\n",
                OptimalDenseTileEdge(budget));
    std::printf("dense GEMM:              %8.1f\n", dense);
    std::printf("%-10s %14s %24s\n", "alpha", "unstructured",
                "sqrt(a)*dense (theory)");
    for (double alpha : {0.5, 0.25, 0.15, 0.05, 0.02}) {
      const ReuseAnalysis u = UnstructuredMaxReuse(budget, alpha);
      std::printf("%-10.2f %14.1f %24.1f\n", alpha, u.flop_per_byte,
                  std::sqrt(alpha) * dense);
    }
    std::printf("%-10s %14s\n", "V", "BW/VW/Shfl-BW");
    for (int v : {8, 16, 32, 64, 128, 256}) {
      std::printf("%-10d %14.1f\n", v,
                  BlockWiseReuse(budget, v).flop_per_byte);
    }
  }

  bench::Section("Reading");
  std::printf(
      "* Unstructured reuse collapses as sqrt(alpha): at 95%% sparsity it "
      "is ~4.5x below dense.\n"
      "* Block-wise/vector-wise/Shfl-BW reach full dense reuse once V >= "
      "T_opt; V=64 is within ~2x.\n"
      "* This is why tensor-core SpMM needs a dense-tileable pattern "
      "(the paper's core claim).\n");
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
