// End-to-end inference benchmark: the runtime analogue of Fig. 6.
//
// Runs Transformer, GNMT and ResNet50 through runtime::Engine twice —
// once with per-layer format auto-selection, once pinned all-dense —
// and reports per-layer and whole-model latency, GFLOP/s, and the cost
// model's planned speedup next to the measured one. Model configs are
// scaled down so the functional simulator finishes in seconds on one
// core (full-size single-layer shapes are tracked by bench_hotpath).
//
// The first auto Run pays the pack phase (prune + convert into the
// PackedWeightCache); timing reports the steady state, and the JSON
// records that the second run performed zero conversions.
//
// Flags: --smoke (tiny configs, 1 rep — CI harness check)
//        --out=FILE (default BENCH_e2e.json)
//        --reps=N (default 2, best-of over whole-model runs)
//        --gpu=V100|T4|A100 (planner cost model, default V100)
//        --density=A (kept density, default 0.25)
//        --v=N (vector/block granularity, default 32)
//        --autotune (empirically re-rank top plan candidates)
//
// Exit status: non-zero if, outside --smoke, the auto-selected plan
// fails to beat all-dense on either sparse-friendly NLP workload (the
// PR's acceptance criterion).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "runtime/engine.h"

namespace shflbw {
namespace runtime {
namespace {

struct ModelReport {
  std::string config;
  ExecutionPlan plan;  // copy of the auto plan
  RunResult auto_run;  // best-of steady-state auto run
  RunResult dense_run;
  std::size_t packs_first_run = 0;
  std::size_t packs_second_run = 0;

  double AutoMs() const { return auto_run.weighted_seconds * 1e3; }
  double DenseMs() const { return dense_run.weighted_seconds * 1e3; }
  double MeasuredSpeedup() const {
    return auto_run.weighted_seconds > 0
               ? dense_run.weighted_seconds / auto_run.weighted_seconds
               : 0.0;
  }
  double ModeledSpeedup() const {
    const double s = plan.ModeledTotalSeconds();
    return s > 0 ? plan.ModeledDenseSeconds() / s : 0.0;
  }
};

/// Best-of-`reps` steady-state run (by repeat-weighted latency).
RunResult BestRun(Engine& engine, int reps) {
  RunResult best = engine.Run();
  for (int r = 1; r < reps; ++r) {
    RunResult next = engine.Run();
    if (next.weighted_seconds < best.weighted_seconds) best = std::move(next);
  }
  return best;
}

ModelReport RunModel(const ModelDesc& model, const std::string& config,
                     const EngineOptions& opts, int reps) {
  ModelReport report;
  report.config = config;

  Engine auto_engine(model, opts);
  const RunResult first = auto_engine.Run();  // pays the pack phase
  report.packs_first_run = first.packs_performed;
  report.auto_run = BestRun(auto_engine, reps);
  report.packs_second_run = report.auto_run.packs_performed;
  report.plan = auto_engine.Plan();

  EngineOptions dense_opts = opts;
  dense_opts.planner.force_format = Format::kDense;
  dense_opts.planner.autotune = false;
  Engine dense_engine(model, dense_opts);
  dense_engine.Run();
  report.dense_run = BestRun(dense_engine, reps);
  return report;
}

void PrintModel(const ModelDesc& model, const ModelReport& r) {
  std::printf("\n%s (%s) on %s plan\n", model.name.c_str(),
              r.config.c_str(), r.plan.gpu.c_str());
  std::printf("  %-18s %-8s %3s %10s %10s %8s %8s\n", "layer", "format",
              "rep", "auto_ms", "dense_ms", "meas_x", "plan_x");
  for (std::size_t i = 0; i < r.auto_run.layers.size(); ++i) {
    const LayerRunRecord& a = r.auto_run.layers[i];
    const LayerRunRecord& d = r.dense_run.layers[i];
    const double plan_x =
        a.modeled_s > 0 ? a.modeled_dense_s / a.modeled_s : 0.0;
    std::printf("  %-18s %-8s %3d %10.3f %10.3f %7.2fx %7.2fx\n",
                a.name.c_str(), FormatName(a.format).c_str(), a.repeat,
                a.seconds * a.repeat * 1e3, d.seconds * d.repeat * 1e3,
                a.seconds > 0 ? d.seconds / a.seconds : 0.0, plan_x);
  }
  std::printf("  %-18s %-8s %3s %10.3f %10.3f %7.2fx %7.2fx   "
              "(packs: first run %zu, steady state %zu)\n",
              "WHOLE MODEL", "", "", r.AutoMs(), r.DenseMs(),
              r.MeasuredSpeedup(), r.ModeledSpeedup(), r.packs_first_run,
              r.packs_second_run);
}

bool WriteJson(const std::string& path, const EngineOptions& opts,
               const std::vector<ModelDesc>& models,
               const std::vector<ModelReport>& reports) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"e2e\",\n");
  shflbw::bench::WriteProvenance(f);
  std::fprintf(f, "  \"gpu\": \"%s\",\n",
               GetGpuSpec(opts.planner.arch).name.c_str());
  std::fprintf(f, "  \"density\": %.3f,\n  \"v\": %d,\n",
               opts.planner.density, opts.planner.v);
  std::fprintf(f, "  \"threads\": %d,\n", ParallelThreadCount());
  std::fprintf(f, "  \"autotune\": %s,\n",
               opts.planner.autotune ? "true" : "false");
  std::fprintf(f, "  \"note\": \"auto/dense ms are repeat-weighted "
               "steady-state latencies; modeled columns are the planner's "
               "GPU cost model, so compare speedup ratios, not absolute "
               "times\",\n");
  std::fprintf(f, "  \"models\": [\n");
  for (std::size_t m = 0; m < reports.size(); ++m) {
    const ModelReport& r = reports[m];
    std::fprintf(f, "    {\"model\": \"%s\", \"config\": \"%s\",\n",
                 models[m].name.c_str(), r.config.c_str());
    std::fprintf(f, "     \"layers\": [\n");
    for (std::size_t i = 0; i < r.auto_run.layers.size(); ++i) {
      const LayerRunRecord& a = r.auto_run.layers[i];
      const LayerRunRecord& d = r.dense_run.layers[i];
      std::fprintf(
          f,
          "       {\"name\": \"%s\", \"format\": \"%s\", \"repeat\": %d, "
          "\"auto_ms\": %.4f, \"dense_ms\": %.4f, "
          "\"auto_gflops\": %.3f, \"dense_gflops\": %.3f, "
          "\"measured_speedup\": %.3f, \"modeled_speedup\": %.3f, "
          "\"modeled_auto_us\": %.3f, \"modeled_dense_us\": %.3f}%s\n",
          a.name.c_str(), FormatName(a.format).c_str(), a.repeat,
          a.seconds * a.repeat * 1e3, d.seconds * d.repeat * 1e3,
          a.Gflops(), d.Gflops(),
          a.seconds > 0 ? d.seconds / a.seconds : 0.0,
          a.modeled_s > 0 ? a.modeled_dense_s / a.modeled_s : 0.0,
          a.modeled_s * 1e6, a.modeled_dense_s * 1e6,
          i + 1 < r.auto_run.layers.size() ? "," : "");
    }
    std::fprintf(f, "     ],\n");
    std::fprintf(
        f,
        "     \"whole_model\": {\"auto_ms\": %.4f, \"dense_ms\": %.4f, "
        "\"measured_speedup\": %.3f, \"modeled_speedup\": %.3f, "
        "\"packs_first_run\": %zu, \"packs_steady_state\": %zu}}%s\n",
        r.AutoMs(), r.DenseMs(), r.MeasuredSpeedup(), r.ModeledSpeedup(),
        r.packs_first_run, r.packs_second_run,
        m + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int reps = 2;
  std::string out = "BENCH_e2e.json";
  EngineOptions opts;
  opts.planner.density = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--autotune") == 0)
      opts.planner.autotune = true;
    else if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    else if (std::strncmp(argv[i], "--reps=", 7) == 0)
      reps = std::max(1, std::atoi(argv[i] + 7));
    else if (std::strncmp(argv[i], "--gpu=", 6) == 0)
      opts.planner.arch = ParseGpuArch(argv[i] + 6);
    else if (std::strncmp(argv[i], "--density=", 10) == 0)
      opts.planner.density = std::atof(argv[i] + 10);
    else if (std::strncmp(argv[i], "--v=", 4) == 0)
      opts.planner.v = std::max(1, std::atoi(argv[i] + 4));
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<ModelDesc> models;
  std::vector<std::string> configs;
  if (smoke) {
    reps = 1;
    TransformerConfig t{64, 128, 32, 1, 1};
    models.push_back(ModelDesc::Transformer(t));
    configs.push_back("d_model=64,d_ff=128,tokens=32,enc=1,dec=1");
    models.push_back(ModelDesc::Gnmt(GnmtConfig{64, 32, 2, 2, 0}));
    configs.push_back("hidden=64,tokens=32,enc=2,dec=2");
    models.push_back(ModelDesc::ResNet50(ResNet50Config{1, 32}));
    configs.push_back("batch=1,image=32");
  } else {
    TransformerConfig t{256, 1024, 128, 2, 2};
    models.push_back(ModelDesc::Transformer(t));
    configs.push_back("d_model=256,d_ff=1024,tokens=128,enc=2,dec=2");
    models.push_back(ModelDesc::Gnmt(GnmtConfig{256, 128, 2, 2, 0}));
    configs.push_back("hidden=256,tokens=128,enc=2,dec=2");
    models.push_back(ModelDesc::ResNet50(ResNet50Config{1, 64}));
    configs.push_back("batch=1,image=64");
  }

  std::printf("bench_e2e: %d thread(s), %d rep(s), gpu %s, density %.2f%s\n",
              ParallelThreadCount(), reps,
              GetGpuSpec(opts.planner.arch).name.c_str(),
              opts.planner.density, opts.planner.autotune ? ", autotune" : "");

  std::vector<ModelReport> reports;
  for (std::size_t m = 0; m < models.size(); ++m) {
    reports.push_back(RunModel(models[m], configs[m], opts, reps));
    PrintModel(models[m], reports.back());
  }

  const bool wrote = WriteJson(out, opts, models, reports);
  if (wrote) std::printf("\nwrote %s\n", out.c_str());

  // Acceptance: the auto plan must beat all-dense on the sparse-friendly
  // NLP workloads (Transformer, GNMT). Measured at full configs only —
  // smoke shapes are too small for a stable margin.
  bool ok = wrote;
  if (!smoke) {
    for (std::size_t m = 0; m < reports.size(); ++m) {
      if (models[m].name == "resnet50") continue;
      if (reports[m].MeasuredSpeedup() <= 1.0) {
        std::fprintf(stderr, "FAIL: %s auto plan (%.3f ms) did not beat "
                     "dense (%.3f ms)\n", models[m].name.c_str(),
                     reports[m].AutoMs(), reports[m].DenseMs());
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw

int main(int argc, char** argv) { return shflbw::runtime::Main(argc, argv); }
