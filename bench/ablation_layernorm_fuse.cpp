// Ablation for the §4.3 layout discussion: the Shfl-BW kernels want
// batch-innermost activations; models with LayerNorm keep features
// contiguous, so a transposition is needed — "transposition can be
// easily fused into previous LayerNorm and involves negligible
// overhead". Quantifies that claim.
#include <cstdio>

#include "arch/cost_model.h"
#include "bench_util.h"
#include "kernels/layernorm_fuse.h"
#include "kernels/spmm_shfl_bw.h"

namespace shflbw {
namespace {

void Run() {
  bench::Title("Ablation — LayerNorm-fused transposition (§4.3)");

  bench::Section(
      "Modelled time (V100): fused LN+transpose vs LN + standalone "
      "transpose, next to the Shfl-BW GEMM it feeds");
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  const CostModel model(spec);
  std::printf("%-22s %12s %12s %14s %12s\n", "tokens x features",
              "fused (us)", "unfused (us)", "spmm@75% (us)",
              "fusion save");
  struct Shape {
    int tokens, features;
  };
  for (const Shape& s :
       {Shape{128, 512}, Shape{512, 512}, Shape{512, 1024},
        Shape{2048, 1024}}) {
    const double fused =
        model.Seconds(LayerNormFusedStats(s.tokens, s.features, spec));
    const double unfused = model.Seconds(
        LayerNormThenTransposeStats(s.tokens, s.features, spec));
    const double spmm = model.Seconds(SpmmShflBwStats(
        4 * s.features, s.tokens, s.features, 0.25, 64, spec));
    std::printf("%8d x %-11d %12.2f %12.2f %14.2f %11.1f%%\n", s.tokens,
                s.features, fused * 1e6, unfused * 1e6, spmm * 1e6,
                (unfused - fused) / (spmm + unfused) * 100);
  }
  bench::Section("Reading");
  std::printf(
      "* The fused variant removes one full activation read+write; "
      "relative to the\n  GEMM it feeds, the standalone transpose would "
      "cost 10-25%% extra — fusing\n  makes the layout requirement "
      "effectively free, as the paper asserts.\n");
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
