// Ablation of the §5 pattern-search components: how much of Shfl-BW's
// quality comes from each ingredient of Fig. 5. Compares row-grouping
// strategies at fixed density and V:
//   contiguous  — no shuffle at all (plain vector-wise)
//   random      — shuffle without looking at the weights
//   kmeans-1    — balanced K-means, single iteration
//   kmeans-10   — the full search (10 iterations, k-means++ restarts)
// and sweeps the beta (mask-generation density) knob.
#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "common/rng.h"
#include "model/weight_synth.h"
#include "prune/importance.h"
#include "prune/shfl_bw_search.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

/// Retention of vector-wise pruning under an explicit row permutation.
double RetentionUnderPermutation(const Matrix<float>& scores,
                                 const std::vector<int>& perm, int v,
                                 double density) {
  Matrix<float> shuffled(scores.rows(), scores.cols());
  for (int s = 0; s < scores.rows(); ++s) {
    for (int c = 0; c < scores.cols(); ++c) {
      shuffled(s, c) = scores(perm[s], c);
    }
  }
  return RetainedScore(shuffled, VectorWiseMask(shuffled, density, v)) /
         [&] {
           double total = 0;
           for (float x : scores.storage()) total += x;
           return total;
         }();
}

void Run() {
  bench::Title("Ablation — Shfl-BW pattern-search components (§5, Fig. 5)");

  SynthWeightOptions wopt;
  wopt.row_types = 8;
  wopt.seed = 811;
  const Matrix<float> w = SynthesizeWeights(256, 256, wopt);
  const Matrix<float> scores = MagnitudeScores(w);
  const int v = 32;

  bench::Section("Row-grouping strategy vs retained importance");
  std::printf("%-14s %10s %10s %10s\n", "strategy", "25% dens.",
              "15% dens.", "10% dens.");
  const std::vector<double> densities{0.25, 0.15, 0.10};

  // Contiguous (= vector-wise, identity permutation).
  std::vector<int> identity(256);
  std::iota(identity.begin(), identity.end(), 0);
  std::printf("%-14s", "contiguous");
  for (double d : densities) {
    std::printf(" %9.1f%%",
                RetentionUnderPermutation(scores, identity, v, d) * 100);
  }
  std::printf("\n");

  // Random shuffle.
  Rng rng(821);
  const std::vector<int> random_perm = rng.Permutation(256);
  std::printf("%-14s", "random");
  for (double d : densities) {
    std::printf(" %9.1f%%",
                RetentionUnderPermutation(scores, random_perm, v, d) * 100);
  }
  std::printf("\n");

  // K-means with 1 and 10 iterations.
  for (int iters : {1, 10}) {
    std::printf("kmeans-%-7d", iters);
    for (double d : densities) {
      ShflBwSearchOptions opt;
      opt.kmeans_iterations = iters;
      const ShflBwSearchResult r = ShflBwSearch(scores, d, v, opt);
      std::printf(" %9.1f%%", RetainedScoreRatio(scores, r.mask) * 100);
    }
    std::printf("\n");
  }

  bench::Section("Beta (mask density multiplier) sweep at 15% density");
  std::printf("%-10s %20s\n", "beta/alpha", "retained importance");
  for (double ratio : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    ShflBwSearchOptions opt;
    opt.beta_ratio = ratio;
    const ShflBwSearchResult r = ShflBwSearch(scores, 0.15, v, opt);
    std::printf("%-10.1f %19.1f%%\n", ratio,
                RetainedScoreRatio(scores, r.mask) * 100);
  }

  bench::Section("Reading");
  std::printf(
      "* Random shuffling is no better than contiguous grouping — the\n"
      "  flexibility only pays when the permutation is SEARCHED (the "
      "paper's point\n  that greedy selection fails and a clustering "
      "heuristic is needed).\n"
      "* K-means grouping recovers most of the gap to unstructured; "
      "iterations\n  beyond a few add little.\n"
      "* The beta knob is mild on the static proxy; the paper's beta=2 "
      "preference\n  comes from training dynamics.\n");
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
