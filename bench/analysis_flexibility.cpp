// §3.2.1 analysis: flexibility (candidate-structure counts) of each
// sparse pattern, including the paper's M=512 / V=128 example exceeding
// e^700.
#include <cstdio>

#include "arch/flexibility.h"
#include "bench_util.h"

namespace shflbw {
namespace {

void Run() {
  bench::Title("§3.2.1 — flexibility analysis (log-space counts)");

  bench::Section("Paper example: row-grouping count for M=512, V=128");
  const double log_count = LogRowGroupingCount(512, 128, true);
  std::printf("ln(M!/(V!)^(M/V)) = %.1f  (paper: exceeds 700)\n", log_count);

  bench::Section("Candidate-structure counts, 512x512 matrix, 25% density");
  std::printf("%-8s %18s %18s %18s %18s\n", "V", "ln(unstructured)",
              "ln(Shfl-BW)", "ln(vector-wise)", "ln(block-wise)");
  for (int v : {8, 16, 32, 64, 128}) {
    const FlexibilityReport rep = AnalyzeFlexibility(512, 512, 0.25, v);
    std::printf("%-8d %18.0f %18.0f %18.0f %18.0f\n", v,
                rep.log_unstructured, rep.log_shfl_bw, rep.log_vector_wise,
                rep.log_block_wise);
  }

  bench::Section("Shfl-BW multiplier over vector-wise (ln of ratio)");
  for (int v : {32, 64, 128}) {
    std::printf("V=%-4d shuffle multiplies candidates by e^%.0f\n", v,
                LogRowGroupingCount(512, v, true));
  }
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
