// Ablation: tile-size / V sweep — how the block size trades modelled
// performance (data reuse, §3.2.2) against pruning quality (flexibility,
// §3.2.1). This is the design-space view behind the paper's V=32/64
// choices.
#include <cstdio>

#include "arch/cost_model.h"
#include "bench_util.h"
#include "core/evaluator.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_shfl_bw.h"
#include "model/weight_synth.h"
#include "prune/importance.h"
#include "prune/shfl_bw_search.h"

namespace shflbw {
namespace {

void Run() {
  bench::Title("Ablation — vector size V: speed vs quality");

  bench::Section(
      "Modelled Shfl-BW speedup over dense (4096x1024 @75%, N=128)");
  std::printf("%-8s %10s %10s %10s\n", "V", "V100", "T4", "A100");
  for (int v : {8, 16, 32, 64, 128, 256}) {
    std::printf("%-8d", v);
    for (const GpuSpec& spec : AllGpus()) {
      const CostModel model(spec);
      const double dense =
          model.Seconds(GemmTensorCoreStats(4096, 128, 1024, spec));
      const double sparse =
          model.Seconds(SpmmShflBwStats(4096, 128, 1024, 0.25, v, spec));
      std::printf(" %9.2fx", dense / sparse);
    }
    std::printf("\n");
  }

  bench::Section("Retained importance after Shfl-BW search @75% sparsity");
  SynthWeightOptions opt;
  opt.seed = 443;
  const Matrix<float> w = SynthesizeWeights(256, 256, opt);
  const Matrix<float> scores = MagnitudeScores(w);
  std::printf("%-8s %20s\n", "V", "retained ratio");
  for (int v : {8, 16, 32, 64, 128}) {
    const double r =
        RetainedScoreRatio(scores, ShflBwSearch(scores, 0.25, v).mask);
    std::printf("%-8d %19.1f%%\n", v, r * 100);
  }

  bench::Section("TN (output tile width) sweep, modelled (V=64, V100)");
  const GpuSpec& v100 = GetGpuSpec(GpuArch::kV100);
  const CostModel model(v100);
  std::printf("%-8s %14s\n", "TN", "time (us)");
  for (int tn : {16, 32, 64, 128, 256}) {
    TileConfig cfg;
    cfg.tn = tn;
    const KernelStats s =
        SpmmShflBwStats(4096, 256, 1024, 0.25, 64, v100, cfg);
    std::printf("%-8d %14.2f\n", tn, model.Seconds(s) * 1e6);
  }

  bench::Section("Reading");
  std::printf(
      "* Speed rises with V (reuse) but saturates near T_opt; quality "
      "falls with V.\n"
      "* V=32/64 sit at the knee on both axes — the paper's choice.\n");
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
