// Ablation: metadata prefetch + software pipelining (§4.4, Algorithm 1).
//
// Sweeps the pipeline depth and the MetaPrefetchStage bulk factor and
// reports (a) the modelled pipeline-fill cost and (b) the metadata-load
// transaction count, showing why bulk prefetch "leads to more efficient
// usage of bandwidth".
#include <cstdio>

#include "arch/cost_model.h"
#include "bench_util.h"
#include "common/rng.h"
#include "kernels/spmm_shfl_bw.h"
#include "prune/shfl_bw_search.h"

namespace shflbw {
namespace {

void Run() {
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  const CostModel model(spec);
  bench::Title("Ablation — pipelining & metadata prefetch (Algorithm 1)");

  bench::Section(
      "Modelled time vs pipeline stages (Shfl-BW, 4096x1024 @75%, V=64)");
  std::printf("%-10s %14s %16s\n", "stages", "total (us)", "fill cost (us)");
  for (int stages : {0, 1, 2, 3, 4, 8}) {
    TileConfig cfg;
    cfg.pipeline_stages = stages;
    const KernelStats s =
        SpmmShflBwStats(4096, 128, 1024, 0.25, 64, spec, cfg);
    const TimeBreakdown t = model.Estimate(s);
    std::printf("%-10d %14.2f %16.2f\n", stages, t.total_s * 1e6,
                t.pipeline_fill_s * 1e6);
  }

  bench::Section("Metadata transactions vs MetaPrefetchStage");
  // One bulk load per MetaPrefetchStage steps: transactions = ceil(steps
  // / MPS). Fewer, larger transactions use bandwidth better.
  const int kept_per_group = 256;  // 25% of K=1024
  const int tk = 16;
  const int steps = (kept_per_group + tk - 1) / tk;
  std::printf("%-20s %14s %18s\n", "MetaPrefetchStage", "transactions",
              "bytes/transaction");
  for (int mps : {1, 2, 4, 8, 16}) {
    const int transactions = (steps + mps - 1) / mps;
    std::printf("%-20d %14d %18d\n", mps, transactions, mps * tk * 4);
  }

  bench::Section(
      "Pipeline hazard check: stitching never outruns metadata "
      "(Algorithm 1 schedule)");
  Rng rng(433);
  const Matrix<float> w = rng.NormalMatrix(64, 256);
  const ShflBwMatrix m = PruneToShflBw(w, 0.25, 16);
  const Matrix<float> b = rng.NormalMatrix(256, 32);
  for (int mps : {1, 2, 4, 8}) {
    TileConfig cfg;
    cfg.meta_prefetch_stage = mps;
    std::vector<PipelineEvent> trace;
    SpmmShflBwTraced(m, b, spec, cfg, trace);
    int hazards = 0;
    for (const PipelineEvent& e : trace) {
      if (!e.meta_ready) ++hazards;
    }
    std::printf("MetaPrefetchStage=%-3d pipeline events=%-4zu hazards=%d\n",
                mps, trace.size(), hazards);
  }
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
