// Quality-vs-latency benchmark: the runtime analogue of Table 1.
//
// For Transformer, GNMT and a scaled ResNet50 stage it runs the engine
// under three policies — all-dense, speed-only auto-selection (the
// quality-blind cost-model ranking), and quality-constrained plans at
// a sweep of retained-importance floors — and writes the resulting
// quality/latency Pareto frontier to BENCH_quality.json, together with
// the Table 1 quality ordering of the prune patterns at equal density
// (block-wise retains least, unstructured most, Shfl-BW recovering
// most of the vector-wise gap).
//
// Flags: --smoke (tiny configs, 1 rep — the CI gate)
//        --out=FILE (default BENCH_quality.json)
//        --reps=N (default 2, best-of over whole-model runs)
//        --gpu=V100|T4|A100 (planner cost model, default V100)
//        --v=N (vector/block granularity, default 32; 8 in smoke)
//
// Exit status: non-zero if ANY of the deterministic guarantees fails
// (enforced in smoke runs too — none of them depend on timing):
//   - a quality-constrained plan misses its retained-score floor
//     (per-layer min ratio < floor, or aggregate ratio < floor for the
//     aggregate-mode plan);
//   - a quality-constrained plan exceeds the all-dense modelled
//     latency (dense always qualifies, so the planner may never do
//     worse than falling back);
//   - planning is not bit-deterministic (same options -> same plan);
//   - Engine::Run on a quality-constrained plan is not bit-identical
//     across thread counts;
//   - the Table 1 quality ordering (unstructured >= shfl-bw >=
//     vector-wise >= block-wise) fails on the probe shape.
// The measured latency envelope (speed-only <= quality <= dense) is
// REPORTED per floor but not gated: wall-clock comparisons are noisy,
// and a low floor can legitimately beat the speed-only plan by picking
// a ladder density below the speed plan's global one.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "model/weight_synth.h"
#include "prune/block_wise.h"
#include "prune/importance.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"
#include "quality/quality_evaluator.h"
#include "runtime/engine.h"

namespace shflbw {
namespace runtime {
namespace {

quality::QualityEvaluator& Evaluator() {
  return quality::QualityEvaluator::Shared();
}

struct FloorReport {
  double floor = 0;
  bool aggregate = false;   // floor mode of this entry
  ExecutionPlan plan;
  RunResult run;            // best-of steady-state
  double min_ratio = -1;
  double aggregate_ratio = -1;
  bool meets_floor = false;
  bool within_dense_model_envelope = false;

  double Ms() const { return run.weighted_seconds * 1e3; }
  double ModeledMs() const { return plan.ModeledTotalSeconds() * 1e3; }
};

struct ModelReport {
  std::string config;
  double dense_ms = 0;
  double dense_modeled_ms = 0;
  // Speed-only (quality-blind) auto plan, ratios evaluated post hoc.
  double speed_ms = 0;
  double speed_modeled_ms = 0;
  double speed_min_ratio = -1;
  double speed_aggregate_ratio = -1;
  std::vector<FloorReport> floors;
  bool plan_deterministic = false;
  bool thread_bit_identical = false;
};

RunResult BestRun(Engine& engine, int reps) {
  RunResult best = engine.Run();
  for (int r = 1; r < reps; ++r) {
    RunResult next = engine.Run();
    if (next.weighted_seconds < best.weighted_seconds) best = std::move(next);
  }
  return best;
}

/// Post-hoc quality of a (possibly speed-only) plan: evaluates each
/// selected layer's mask and returns {min ratio, aggregate ratio}.
std::pair<double, double> PlanQuality(const ModelDesc& model,
                                      const ExecutionPlan& plan,
                                      std::uint64_t weight_seed) {
  double min_ratio = 2.0;
  double weighted = 0.0, weight = 0.0;
  for (const LayerPlan& lp : plan.layers) {
    const LayerDesc& l = model.layers[static_cast<std::size_t>(lp.layer)];
    const double ratio =
        lp.retained_ratio >= 0.0
            ? lp.retained_ratio
            : Evaluator().LayerRetainedRatio(l, lp.layer, weight_seed,
                                             lp.format, lp.density, lp.v);
    const double w =
        Evaluator().LayerTotalScore(l, lp.layer, weight_seed) * lp.repeat;
    min_ratio = std::min(min_ratio, ratio);
    weighted += w * ratio;
    weight += w;
  }
  return {min_ratio, weight > 0 ? weighted / weight : -1.0};
}

bool PlansEqual(const ExecutionPlan& a, const ExecutionPlan& b) {
  if (a.layers.size() != b.layers.size()) return false;
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    const LayerPlan& x = a.layers[i];
    const LayerPlan& y = b.layers[i];
    if (x.format != y.format || x.density != y.density || x.v != y.v ||
        x.modeled_s != y.modeled_s || x.retained_ratio != y.retained_ratio ||
        x.candidates.size() != y.candidates.size()) {
      return false;
    }
    for (std::size_t c = 0; c < x.candidates.size(); ++c) {
      if (x.candidates[c].format != y.candidates[c].format ||
          x.candidates[c].density != y.candidates[c].density ||
          x.candidates[c].v != y.candidates[c].v ||
          x.candidates[c].modeled_s != y.candidates[c].modeled_s ||
          x.candidates[c].retained_ratio != y.candidates[c].retained_ratio) {
        return false;
      }
    }
  }
  return true;
}

ModelReport RunModel(const ModelDesc& model, const std::string& config,
                     const EngineOptions& base,
                     const std::vector<double>& floors, int reps) {
  ModelReport report;
  report.config = config;

  {
    EngineOptions dense = base;
    dense.planner.force_format = Format::kDense;
    Engine engine(model, dense);
    engine.Run();
    const RunResult run = BestRun(engine, reps);
    report.dense_ms = run.weighted_seconds * 1e3;
    report.dense_modeled_ms = engine.Plan().ModeledTotalSeconds() * 1e3;
  }
  {
    Engine engine(model, base);  // quality disabled: speed-only ranking
    engine.Run();
    const RunResult run = BestRun(engine, reps);
    report.speed_ms = run.weighted_seconds * 1e3;
    report.speed_modeled_ms = engine.Plan().ModeledTotalSeconds() * 1e3;
    const auto [min_ratio, agg] =
        PlanQuality(model, engine.Plan(), base.weight_seed);
    report.speed_min_ratio = min_ratio;
    report.speed_aggregate_ratio = agg;
  }

  for (double floor : floors) {
    EngineOptions opts = base;
    opts.planner.quality.enabled = true;
    opts.planner.quality.min_retained_ratio = floor;
    Engine engine(model, opts);
    engine.Run();
    FloorReport fr;
    fr.floor = floor;
    fr.run = BestRun(engine, reps);
    fr.plan = engine.Plan();
    const auto [min_ratio, agg] =
        PlanQuality(model, fr.plan, opts.weight_seed);
    fr.min_ratio = min_ratio;
    fr.aggregate_ratio = agg;
    fr.meets_floor = fr.min_ratio + 1e-9 >= floor;
    fr.within_dense_model_envelope =
        fr.plan.ModeledTotalSeconds() <=
        fr.plan.ModeledDenseSeconds() * (1 + 1e-12) + 1e-15;
    report.floors.push_back(std::move(fr));
  }

  // One aggregate-mode plan at the highest floor: the relaxation that
  // lets unimportant layers stay sparse while the importance-weighted
  // mean meets the same floor.
  if (!floors.empty()) {
    EngineOptions opts = base;
    opts.planner.quality.enabled = true;
    opts.planner.quality.min_retained_ratio = floors.back();
    opts.planner.quality.floor = QualityOptions::Floor::kAggregate;
    Engine engine(model, opts);
    engine.Run();
    FloorReport fr;
    fr.floor = floors.back();
    fr.aggregate = true;
    fr.run = BestRun(engine, reps);
    fr.plan = engine.Plan();
    const auto [min_ratio, agg] =
        PlanQuality(model, fr.plan, opts.weight_seed);
    fr.min_ratio = min_ratio;
    fr.aggregate_ratio = agg;
    fr.meets_floor = fr.aggregate_ratio + 1e-9 >= fr.floor;
    fr.within_dense_model_envelope =
        fr.plan.ModeledTotalSeconds() <=
        fr.plan.ModeledDenseSeconds() * (1 + 1e-12) + 1e-15;
    report.floors.push_back(std::move(fr));
  }

  // Determinism gate: the same options must reproduce the first
  // quality plan bit-for-bit.
  if (!report.floors.empty()) {
    PlannerOptions popts = base.planner;
    popts.quality.enabled = true;
    popts.quality.min_retained_ratio = report.floors.front().floor;
    popts.quality.weight_seed = base.weight_seed;
    report.plan_deterministic =
        PlansEqual(PlanModel(model, popts), report.floors.front().plan) &&
        PlansEqual(PlanModel(model, popts), PlanModel(model, popts));
  }

  // Thread bit-identity gate on the lowest floor (the sparsest, most
  // parallel plan): 1-thread output is the reference.
  {
    EngineOptions opts = base;
    opts.planner.quality.enabled = true;
    opts.planner.quality.min_retained_ratio =
        floors.empty() ? 0.5 : floors.front();
    SetParallelThreads(1);
    Engine ref(model, opts);
    const Matrix<float> expected = ref.Run().output;
    report.thread_bit_identical = true;
    for (int threads : {2, 4}) {
      SetParallelThreads(threads);
      Engine engine(model, opts);
      if (!(engine.Run().output == expected)) {
        report.thread_bit_identical = false;
      }
    }
    SetParallelThreads(0);
  }
  return report;
}

struct OrderingProbe {
  int m = 256, k = 256, v = 32;
  double density = 0.25;
  double unstructured = 0, shflbw = 0, vw = 0, bsr = 0;
  bool Holds() const {
    return unstructured >= shflbw && shflbw >= vw && vw >= bsr;
  }
};

/// The Table 1 ordering on one probe shape, computed with the same
/// maskers the evaluator and pack phase share.
OrderingProbe ProbeOrdering(int v) {
  OrderingProbe p;
  p.v = v;
  SynthWeightOptions opt;
  opt.seed = 424242;
  const Matrix<float> s =
      MagnitudeScores(SynthesizeWeights(p.m, p.k, opt));
  p.unstructured = RetainedScoreRatio(s, UnstructuredMask(s, p.density));
  p.shflbw =
      RetainedScoreRatio(s, ShflBwSearch(s, p.density, p.v).mask);
  p.vw = RetainedScoreRatio(s, VectorWiseMask(s, p.density, p.v));
  p.bsr = RetainedScoreRatio(s, BlockWiseMask(s, p.density, p.v));
  return p;
}

void PrintModel(const ModelDesc& model, const ModelReport& r) {
  std::printf("\n%s (%s)\n", model.name.c_str(), r.config.c_str());
  std::printf("  %-22s %10s %10s %10s %10s\n", "plan", "ms", "modeled_ms",
              "min_ratio", "agg_ratio");
  std::printf("  %-22s %10.3f %10.3f %10s %10s\n", "all-dense", r.dense_ms,
              r.dense_modeled_ms, "1.000", "1.000");
  std::printf("  %-22s %10.3f %10.3f %10.3f %10.3f\n", "speed-only",
              r.speed_ms, r.speed_modeled_ms, r.speed_min_ratio,
              r.speed_aggregate_ratio);
  for (const FloorReport& fr : r.floors) {
    char label[64];
    std::snprintf(label, sizeof(label), "floor %.2f%s", fr.floor,
                  fr.aggregate ? " (aggregate)" : "");
    std::printf("  %-22s %10.3f %10.3f %10.3f %10.3f%s\n", label, fr.Ms(),
                fr.ModeledMs(), fr.min_ratio, fr.aggregate_ratio,
                fr.meets_floor ? "" : "  FLOOR MISSED");
  }
  std::printf("  plan deterministic: %s, thread bit-identical: %s\n",
              r.plan_deterministic ? "yes" : "NO",
              r.thread_bit_identical ? "yes" : "NO");
  for (const FloorReport& fr : r.floors) {
    if (fr.aggregate) continue;
    std::printf("    floor %.2f layers:", fr.floor);
    for (const LayerPlan& lp : fr.plan.layers) {
      std::printf(" %s=%s@%.3g", lp.name.c_str(),
                  FormatName(lp.format).c_str(), lp.density);
    }
    std::printf("\n");
  }
}

bool WriteJson(const std::string& path, const EngineOptions& base,
               const std::vector<double>& floors,
               const OrderingProbe& probe,
               const std::vector<ModelDesc>& models,
               const std::vector<ModelReport>& reports) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"quality\",\n");
  shflbw::bench::WriteProvenance(f);
  std::fprintf(f, "  \"gpu\": \"%s\",\n",
               GetGpuSpec(base.planner.arch).name.c_str());
  std::fprintf(f, "  \"v\": %d,\n  \"threads\": %d,\n", base.planner.v,
               ParallelThreadCount());
  std::fprintf(f, "  \"density_ladder\": [");
  const auto& ladder = base.planner.quality.density_ladder;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    std::fprintf(f, "%s%.4f", i ? ", " : "", ladder[i]);
  }
  std::fprintf(f, "],\n  \"floors\": [");
  for (std::size_t i = 0; i < floors.size(); ++i) {
    std::fprintf(f, "%s%.3f", i ? ", " : "", floors[i]);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"note\": \"ms are repeat-weighted steady-state "
               "wall-clock latencies of the CPU simulator; modeled_ms are "
               "GPU cost-model times (compare ratios, not absolutes); "
               "ratios are retained-score ratios, the Table 1 quality "
               "proxy; the aggregate entry relaxes the per-layer floor to "
               "an importance-weighted mean\",\n");
  std::fprintf(f,
               "  \"quality_ordering\": {\"m\": %d, \"k\": %d, \"v\": %d, "
               "\"density\": %.3f, \"unstructured\": %.6f, \"shflbw\": %.6f, "
               "\"vw\": %.6f, \"bsr\": %.6f, \"ordering_holds\": %s},\n",
               probe.m, probe.k, probe.v, probe.density, probe.unstructured,
               probe.shflbw, probe.vw, probe.bsr,
               probe.Holds() ? "true" : "false");
  std::fprintf(f, "  \"models\": [\n");
  for (std::size_t m = 0; m < reports.size(); ++m) {
    const ModelReport& r = reports[m];
    std::fprintf(f, "    {\"model\": \"%s\", \"config\": \"%s\",\n",
                 models[m].name.c_str(), r.config.c_str());
    std::fprintf(f,
                 "     \"dense\": {\"ms\": %.4f, \"modeled_ms\": %.4f},\n",
                 r.dense_ms, r.dense_modeled_ms);
    std::fprintf(f,
                 "     \"speed_only\": {\"ms\": %.4f, \"modeled_ms\": %.4f, "
                 "\"min_ratio\": %.6f, \"aggregate_ratio\": %.6f},\n",
                 r.speed_ms, r.speed_modeled_ms, r.speed_min_ratio,
                 r.speed_aggregate_ratio);
    std::fprintf(f, "     \"pareto\": [\n");
    for (std::size_t i = 0; i < r.floors.size(); ++i) {
      const FloorReport& fr = r.floors[i];
      std::fprintf(
          f,
          "       {\"floor\": %.3f, \"mode\": \"%s\", \"ms\": %.4f, "
          "\"modeled_ms\": %.4f, \"min_ratio\": %.6f, "
          "\"aggregate_ratio\": %.6f, \"meets_floor\": %s, "
          "\"within_dense_model_envelope\": %s, \"layers\": [",
          fr.floor, fr.aggregate ? "aggregate" : "per_layer", fr.Ms(),
          fr.ModeledMs(), fr.min_ratio, fr.aggregate_ratio,
          fr.meets_floor ? "true" : "false",
          fr.within_dense_model_envelope ? "true" : "false");
      for (std::size_t l = 0; l < fr.plan.layers.size(); ++l) {
        const LayerPlan& lp = fr.plan.layers[l];
        std::fprintf(f,
                     "%s{\"name\": \"%s\", \"format\": \"%s\", "
                     "\"density\": %.4f, \"v\": %d, \"ratio\": %.6f}",
                     l ? ", " : "", lp.name.c_str(),
                     FormatName(lp.format).c_str(), lp.density, lp.v,
                     lp.retained_ratio);
      }
      std::fprintf(f, "]}%s\n", i + 1 < r.floors.size() ? "," : "");
    }
    std::fprintf(f, "     ],\n");
    std::fprintf(f,
                 "     \"plan_deterministic\": %s, "
                 "\"thread_bit_identical\": %s}%s\n",
                 r.plan_deterministic ? "true" : "false",
                 r.thread_bit_identical ? "true" : "false",
                 m + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

/// ResNet50 truncated to shapes whose per-candidate Shfl-BW search
/// stays sub-second: the conv path is exercised, the stage-4 weights
/// (minutes of Fig. 5 search per ladder point) are left to the paper's
/// offline setting.
ModelDesc ScaledResNet(int image, int max_m, int max_k) {
  ModelDesc model = ModelDesc::ResNet50(ResNet50Config{1, image});
  std::erase_if(model.layers, [&](const LayerDesc& l) {
    return l.GemmM() > max_m || l.GemmK() > max_k;
  });
  return model;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int reps = 2;
  std::string out = "BENCH_quality.json";
  EngineOptions base;
  base.planner.density = 0.25;  // the speed-only plan's global density
  base.planner.v = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    else if (std::strncmp(argv[i], "--reps=", 7) == 0)
      reps = std::max(1, std::atoi(argv[i] + 7));
    else if (std::strncmp(argv[i], "--gpu=", 6) == 0)
      base.planner.arch = ParseGpuArch(argv[i] + 6);
    else if (std::strncmp(argv[i], "--v=", 4) == 0)
      base.planner.v = std::max(1, std::atoi(argv[i] + 4));
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<ModelDesc> models;
  std::vector<std::string> configs;
  std::vector<double> floors;
  if (smoke) {
    reps = 1;
    base.planner.v = 8;
    floors = {0.7, 0.9};
    models.push_back(
        ModelDesc::Transformer(TransformerConfig{64, 128, 32, 1, 1}));
    configs.push_back("d_model=64,d_ff=128,tokens=32,enc=1,dec=1");
    models.push_back(ModelDesc::Gnmt(GnmtConfig{64, 32, 2, 2, 0}));
    configs.push_back("hidden=64,tokens=32,enc=2,dec=2");
    models.push_back(ScaledResNet(32, 256, 640));
    configs.push_back("batch=1,image=32,small-stages");
  } else {
    floors = {0.5, 0.7, 0.85, 0.95};
    models.push_back(
        ModelDesc::Transformer(TransformerConfig{256, 1024, 128, 2, 2}));
    configs.push_back("d_model=256,d_ff=1024,tokens=128,enc=2,dec=2");
    models.push_back(ModelDesc::Gnmt(GnmtConfig{256, 128, 2, 2, 0}));
    configs.push_back("hidden=256,tokens=128,enc=2,dec=2");
    models.push_back(ScaledResNet(64, 512, 1152));
    configs.push_back("batch=1,image=64,small-stages");
  }

  std::printf(
      "bench_quality: %d thread(s), %d rep(s), gpu %s, v %d, floors [",
      ParallelThreadCount(), reps, GetGpuSpec(base.planner.arch).name.c_str(),
      base.planner.v);
  for (std::size_t i = 0; i < floors.size(); ++i) {
    std::printf("%s%.2f", i ? ", " : "", floors[i]);
  }
  std::printf("]\n");

  const OrderingProbe probe = ProbeOrdering(base.planner.v);
  std::printf("\nTable 1 ordering probe (%dx%d, density %.2f, V=%d): "
              "unstructured %.3f >= shfl-bw %.3f >= vw %.3f >= bsr %.3f: %s\n",
              probe.m, probe.k, probe.density, probe.v, probe.unstructured,
              probe.shflbw, probe.vw, probe.bsr,
              probe.Holds() ? "holds" : "VIOLATED");

  std::vector<ModelReport> reports;
  for (std::size_t m = 0; m < models.size(); ++m) {
    reports.push_back(
        RunModel(models[m], configs[m], base, floors, reps));
    PrintModel(models[m], reports.back());
  }

  const bool wrote = WriteJson(out, base, floors, probe, models, reports);
  if (wrote) std::printf("\nwrote %s\n", out.c_str());

  bool ok = wrote && probe.Holds();
  for (std::size_t m = 0; m < reports.size(); ++m) {
    const ModelReport& r = reports[m];
    if (!r.plan_deterministic) {
      std::fprintf(stderr, "FAIL: %s quality plan is not deterministic\n",
                   models[m].name.c_str());
      ok = false;
    }
    if (!r.thread_bit_identical) {
      std::fprintf(stderr,
                   "FAIL: %s quality-constrained run differs across "
                   "thread counts\n",
                   models[m].name.c_str());
      ok = false;
    }
    for (const FloorReport& fr : r.floors) {
      if (!fr.meets_floor) {
        std::fprintf(stderr,
                     "FAIL: %s floor %.2f (%s) missed: min %.4f agg %.4f\n",
                     models[m].name.c_str(), fr.floor,
                     fr.aggregate ? "aggregate" : "per_layer", fr.min_ratio,
                     fr.aggregate_ratio);
        ok = false;
      }
      if (!fr.within_dense_model_envelope) {
        std::fprintf(stderr,
                     "FAIL: %s floor %.2f modelled latency exceeds the "
                     "all-dense envelope\n",
                     models[m].name.c_str(), fr.floor);
        ok = false;
      }
    }
  }
  if (!probe.Holds()) {
    std::fprintf(stderr, "FAIL: Table 1 quality ordering violated\n");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw

int main(int argc, char** argv) { return shflbw::runtime::Main(argc, argv); }
