// Table 1: quality of pruned models under different sparse patterns at
// 80% and 90% sparsity.
//
// Two substitutions for the paper's trained Transformer/GNMT/ResNet50
// (see DESIGN.md §0):
//  (a) retained-importance proxy scores on synthetic weights with
//      realistic row-cluster structure, calibrated per model so the
//      dense point matches the paper's metric scale;
//  (b) a REAL train -> prune -> fine-tune experiment on a small MLP,
//      reporting actual test accuracy per pattern.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/evaluator.h"
#include "model/weight_synth.h"
#include "nn/trainer.h"
#include "prune/block_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

struct ModelProxy {
  const char* name;
  double dense_score;
  double sensitivity;  // calibrated: see EXPERIMENTS.md
  int m, k;
};

// Sensitivity = how strongly each model's metric reacts to the pattern
// penalty (relative retention vs unstructured at equal density), fit to
// one Table 1 anchor per model (BW V=32 @80%): Transformer and ResNet50
// barely react, GNMT craters (paper: 13.83 BLEU). Orderings between
// patterns are calibration-free.
const std::vector<ModelProxy> kModels{
    {"Transformer (BLEU)", 27.6, 0.06, 256, 256},
    {"GNMT (BLEU)", 24.6, 0.52, 256, 128},
    {"ResNet50 (Top-1 %)", 76.5, 0.02, 128, 256},
};

struct PatternRow {
  const char* name;
  SparsePattern pattern;
  int v;
};

const std::vector<PatternRow> kPatterns{
    {"BW,  V=32", SparsePattern::kBlockWise, 32},
    {"VW,  V=32", SparsePattern::kVectorWise, 32},
    {"Shfl-BW, V=32", SparsePattern::kShflBw, 32},
    {"Shfl-BW, V=64", SparsePattern::kShflBw, 64},
};

void ProxyTable() {
  bench::Section(
      "Table 1(a): retained-importance proxy (paper's metric scale)");
  std::printf("%-10s %-15s", "sparsity", "pattern");
  for (const ModelProxy& m : kModels) std::printf(" %20s", m.name);
  std::printf("\n");
  for (double sparsity : {0.80, 0.90}) {
    for (const PatternRow& p : kPatterns) {
      std::printf("%9.0f%% %-15s", sparsity * 100, p.name);
      for (const ModelProxy& m : kModels) {
        std::vector<Matrix<float>> weights;
        for (int i = 0; i < 3; ++i) {
          SynthWeightOptions opt;
          opt.seed = 9000 + i * 131 + m.m;
          weights.push_back(SynthesizeWeights(m.m, m.k, opt));
        }
        PruneOptions popt;
        popt.v = p.v;
        const QualityResult q =
            EvaluateQuality(weights, p.pattern, 1.0 - sparsity, popt,
                            m.dense_score, m.sensitivity);
        std::printf(" %20.2f", q.proxy_score);
      }
      std::printf("\n");
    }
  }
}

void TrainedMlpTable() {
  bench::Section(
      "Table 1(b): REAL accuracy — MLP trained, pruned per pattern\n"
      "'pruned' = one-shot prune, no recovery (isolates the pattern\n"
      "penalty); 'fine-tuned' = +grow-and-prune fine-tuning. Mean of 3 "
      "seeds.");
  nn::DatasetOptions dopt;
  dopt.num_classes = 8;
  dopt.dim = 32;
  dopt.train_per_class = 120;
  dopt.test_per_class = 40;
  const nn::Dataset data = nn::MakeClusterDataset(dopt);

  nn::TrainOptions topt;
  topt.epochs = 25;
  topt.batch_size = 48;
  nn::TrainOptions ft = topt;
  ft.epochs = 6;

  constexpr int kSeeds = 3;
  const std::vector<int> dims{32, 96, 96, 8};
  const double sparsity = 0.85;

  // Dense baseline (averaged over the same seeds).
  double dense_acc = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    nn::Mlp model(dims, /*seed=*/55 + seed);
    nn::Trainer trainer(model, data);
    trainer.Train(topt);
    dense_acc += trainer.TestAccuracy();
  }
  dense_acc /= kSeeds;
  std::printf("%-18s %12s %12s   (85%% sparsity)\n", "pattern", "pruned",
              "fine-tuned");
  std::printf("%-18s %11.1f%% (dense baseline)\n", "dense",
              dense_acc * 100);

  struct MlpPattern {
    const char* name;
    nn::LayerMasker masker;
  };
  const int v = 16;  // scaled to the MLP's 96-wide hidden layers
  const std::vector<MlpPattern> patterns{
      {"BW,  V=16",
       [&](const Matrix<float>& s, double d) {
         return BlockWiseMask(s, d, v);
       }},
      {"VW,  V=16",
       [&](const Matrix<float>& s, double d) {
         return VectorWiseMask(s, d, v);
       }},
      {"Shfl-BW, V=16",
       [&](const Matrix<float>& s, double d) {
         return ShflBwSearch(s, d, v).mask;
       }},
      {"Shfl-BW, V=32",
       [&](const Matrix<float>& s, double d) {
         return ShflBwSearch(s, d, 32).mask;
       }},
  };
  for (const MlpPattern& p : patterns) {
    double pruned_acc = 0, tuned_acc = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      nn::Mlp model(dims, /*seed=*/55 + seed);
      nn::Trainer trainer(model, data);
      trainer.Train(topt);
      trainer.PruneModel(p.masker, 1.0 - sparsity);
      pruned_acc += trainer.TestAccuracy();
      trainer.GrowAndPruneFineTune(p.masker, 1.0 - sparsity, /*rounds=*/2,
                                   /*grow_ratio=*/0.3, ft);
      tuned_acc += trainer.TestAccuracy();
    }
    std::printf("%-18s %11.1f%% %11.1f%%\n", p.name,
                pruned_acc / kSeeds * 100, tuned_acc / kSeeds * 100);
  }
}

void Run() {
  bench::Title(
      "Table 1 — pruned-model quality by sparse pattern (80% / 90%)\n"
      "Expected ordering (paper): Shfl-BW > VW > BW at equal V;\n"
      "Shfl-BW V=64 competitive with (often above) VW at V=32.");
  ProxyTable();
  TrainedMlpTable();
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
