// Figure 1: SpMM throughput vs density, normalized to the CUDA-core
// dense GEMM, on GEMM shape M/N/K = 2048/128/2048 (V100).
//
// Reproduces the four curves and the three regions the paper marks:
//  A: CUDA-core sparse (Sputnik) passes CUDA-core dense near 65% sparsity
//  B: CUDA-core sparse passes tensor-core dense only near 95%
//  C: tensor-core sparse (Shfl-BW, ours) passes tensor-core dense around
//     50-60% sparsity — "reduces the threshold where sparsity starts to
//     show benefit".
#include <cstdio>
#include <vector>

#include "arch/cost_model.h"
#include "bench_util.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_sputnik.h"

namespace shflbw {
namespace {

constexpr int kM = 2048, kN = 128, kK = 2048;

double Throughput(double useful_flops, double seconds) {
  return useful_flops / seconds;
}

void Run() {
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  const CostModel model(spec);

  const KernelStats dense_cc = GemmCudaCoreStats(kM, kN, kK, spec);
  const KernelStats dense_tc = GemmTensorCoreStats(kM, kN, kK, spec);
  // Normalization: dense throughput uses the DENSE flop count.
  const double cc_dense_tput =
      Throughput(dense_cc.useful_flops, model.Seconds(dense_cc));
  const double tc_dense_tput =
      Throughput(dense_tc.useful_flops, model.Seconds(dense_tc));

  bench::Title(
      "Figure 1 — SpMM throughput vs density (M/N/K=2048/128/2048, V100)\n"
      "All numbers normalized to CUDA-core dense GEMM throughput.\n"
      "Sparse curves use EFFECTIVE throughput: dense-equivalent flops / "
      "time");
  std::printf("%8s %14s %14s %14s %14s\n", "density", "cuda-dense",
              "tensor-dense", "cuda-sparse", "tc-sparse(ours)");

  double cross_a = -1, cross_b = -1, cross_c = -1;
  double prev_sputnik = 0, prev_shflbw = 0;
  const std::vector<double> densities{0.02, 0.03, 0.05, 0.08, 0.10, 0.15,
                                      0.20, 0.25, 0.30, 0.35, 0.40, 0.50,
                                      0.60, 0.70, 0.80, 0.90, 1.00};
  // Effective speedup = dense flops / sparse time: "how much faster is
  // the layer", the quantity Fig. 1 plots.
  const double dense_flops = 2.0 * kM * kN * kK;
  for (auto it = densities.rbegin(); it != densities.rend(); ++it) {
    const double d = *it;
    const KernelStats sputnik =
        SpmmSputnikStats(kM, kN, kK, d * kM * kK, spec);
    const KernelStats shflbw = SpmmShflBwStats(kM, kN, kK, d, 64, spec);
    const double sputnik_tput =
        Throughput(dense_flops, model.Seconds(sputnik));
    const double shflbw_tput = Throughput(dense_flops, model.Seconds(shflbw));
    std::printf("%7.0f%% %13.2fx %13.2fx %13.2fx %13.2fx\n", d * 100,
                1.0, tc_dense_tput / cc_dense_tput,
                sputnik_tput / cc_dense_tput, shflbw_tput / cc_dense_tput);
    // Crossings, scanning density downward (sparsity upward).
    if (cross_a < 0 && sputnik_tput > cc_dense_tput &&
        prev_sputnik <= cc_dense_tput && prev_sputnik > 0) {
      cross_a = d;
    }
    if (cross_b < 0 && sputnik_tput > tc_dense_tput &&
        prev_sputnik <= tc_dense_tput && prev_sputnik > 0) {
      cross_b = d;
    }
    if (cross_c < 0 && shflbw_tput > tc_dense_tput &&
        prev_shflbw <= tc_dense_tput && prev_shflbw > 0) {
      cross_c = d;
    }
    prev_sputnik = sputnik_tput;
    prev_shflbw = shflbw_tput;
  }

  bench::Section("Crossover sparsities (paper: A ~65%, B ~95%, C ~50-60%)");
  std::printf("A: cuda-sparse beats cuda-dense at sparsity > %.0f%%\n",
              cross_a > 0 ? (1 - cross_a) * 100 : -1.0);
  std::printf("B: cuda-sparse beats tensor-dense at sparsity > %.0f%%\n",
              cross_b > 0 ? (1 - cross_b) * 100 : -1.0);
  std::printf("C: tc-sparse (ours) beats tensor-dense at sparsity > %.0f%%\n",
              cross_c > 0 ? (1 - cross_c) * 100 : -1.0);
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
