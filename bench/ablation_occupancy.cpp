// Ablation: occupancy / wave quantization. The base model assumes full
// SM utilization; this bench shows the launch-shape tail effects the
// refinement captures — notably why the Fig. 1 shape (M/N = 2048/128,
// only 16 dense threadblocks on an 80-SM V100) flatters sparse kernels,
// whose V-tall tiles launch more blocks.
#include <cstdio>

#include "arch/occupancy.h"
#include "bench_util.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_shfl_bw.h"

namespace shflbw {
namespace {

void Run() {
  bench::Title("Ablation — occupancy & wave quantization");
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  const CostModel model(spec);

  bench::Section("Dense GEMM launch shapes on V100 (80 SMs)");
  std::printf("%-22s %8s %7s %12s %14s %14s\n", "M/N/K", "blocks", "waves",
              "utilization", "base (us)", "occupancy (us)");
  struct Shape {
    int m, n, k;
  };
  for (const Shape& s :
       {Shape{2048, 128, 2048}, Shape{2048, 512, 2048},
        Shape{4096, 4096, 1024}, Shape{512, 512, 512}}) {
    const KernelStats stats = GemmTensorCoreStats(s.m, s.n, s.k, spec);
    const OccupancyReport occ = AnalyzeOccupancy(stats, spec);
    std::printf("%6d/%-5d/%-8d %8d %7d %11.0f%% %14.2f %14.2f\n", s.m, s.n,
                s.k, stats.threadblocks, occ.waves, occ.utilization * 100,
                model.Seconds(stats) * 1e6,
                EstimateWithOccupancy(model, stats).total_s * 1e6);
  }

  bench::Section(
      "Shfl-BW vs dense with occupancy correction (Fig. 1 shape, 75%)");
  const KernelStats dense = GemmTensorCoreStats(2048, 128, 2048, spec);
  const KernelStats sparse =
      SpmmShflBwStats(2048, 128, 2048, 0.25, 64, spec);
  const double base_speedup =
      model.Seconds(dense) / model.Seconds(sparse);
  const double occ_speedup = EstimateWithOccupancy(model, dense).total_s /
                             EstimateWithOccupancy(model, sparse).total_s;
  std::printf("dense blocks %d, sparse blocks %d\n", dense.threadblocks,
              sparse.threadblocks);
  std::printf("speedup: base model %.2fx, occupancy-adjusted %.2fx\n",
              base_speedup, occ_speedup);

  bench::Section("Reading");
  std::printf(
      "* Small-N dense launches leave most of the machine idle; the\n"
      "  V=64 sparse kernel launches %dx more blocks at the same shape.\n"
      "* Occupancy-adjusting widens the sparse advantage at small N —\n"
      "  consistent with the paper reporting its best kernel wins on\n"
      "  exactly such shapes.\n",
      sparse.threadblocks / std::max(1, dense.threadblocks));
}

}  // namespace
}  // namespace shflbw

int main() {
  shflbw::Run();
  return 0;
}
