// C++ lexer for shflbw_lint (see lint.h). Emits identifiers, literals,
// comments, preprocessor lines and single-character punctuation with
// exact line numbers. It does not need to be a full C++ lexer — only
// faithful enough that the token-pattern rules never misread a string
// or comment as code (the classic grep failure mode this tool exists
// to avoid).

#include <cctype>

#include "lint/lint.h"

namespace shflbw {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> Run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        out.push_back(Directive());
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == '/' || src_[pos_ + 1] == '*')) {
        out.push_back(Comment());
        continue;
      }
      if (c == '"') {
        // Raw strings are introduced by an R (or uR/u8R/LR) glued to
        // the quote; the preceding ident token already carries the
        // prefix, so peeking one token back is enough.
        const bool raw = !out.empty() && out.back().kind == TokKind::kIdent &&
                         !out.back().text.empty() &&
                         out.back().text.back() == 'R';
        out.push_back(raw ? RawString() : String('"', TokKind::kString));
        continue;
      }
      if (c == '\'') {
        out.push_back(String('\'', TokKind::kChar));
        continue;
      }
      if (IsIdentStart(c)) {
        out.push_back(Ident());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        out.push_back(Number());
        continue;
      }
      out.push_back(Token{TokKind::kPunct, std::string(1, c), line_});
      ++pos_;
    }
    return out;
  }

 private:
  /// Consumes to end of line, honouring backslash continuations, and
  /// returns the whole directive (text preserved for pragma/include
  /// checks). Comments inside the directive are left verbatim — the
  /// rules only substring-match directive text.
  Token Directive() {
    Token t{TokKind::kDirective, "", line_};
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        if (!t.text.empty() && t.text.back() == '\\') {
          t.text.pop_back();
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      t.text.push_back(c);
      ++pos_;
    }
    return t;
  }

  Token Comment() {
    Token t{TokKind::kComment, "", line_};
    if (src_[pos_ + 1] == '/') {
      while (pos_ < src_.size() && src_[pos_] != '\n') {
        t.text.push_back(src_[pos_++]);
      }
      return t;
    }
    // Block comment: scan to */ counting newlines.
    t.text += "/*";
    pos_ += 2;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '*' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        t.text += "*/";
        pos_ += 2;
        return t;
      }
      if (c == '\n') ++line_;
      t.text.push_back(c);
      ++pos_;
    }
    return t;  // unterminated: ends at EOF
  }

  Token String(char quote, TokKind kind) {
    Token t{kind, "", line_};
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == quote) {
        ++pos_;
        return t;
      }
      if (c == '\n') ++line_;  // ill-formed, but keep line counts right
      ++pos_;
    }
    return t;
  }

  Token RawString() {
    Token t{TokKind::kString, "", line_};
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim.push_back(src_[pos_++]);
    ++pos_;  // '('
    const std::string close = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_.compare(pos_, close.size(), close) == 0) {
        pos_ += close.size();
        return t;
      }
      ++pos_;
    }
    return t;
  }

  Token Ident() {
    Token t{TokKind::kIdent, "", line_};
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) {
      t.text.push_back(src_[pos_++]);
    }
    return t;
  }

  Token Number() {
    Token t{TokKind::kNumber, "", line_};
    // Good enough for rule purposes: digits plus the usual literal
    // characters ('.', exponents, suffixes, hex, digit separators).
    while (pos_ < src_.size() &&
           (IsIdentChar(src_[pos_]) || src_[pos_] == '.' || src_[pos_] == '\'')) {
      // A digit separator quote is only consumed when a digit follows;
      // otherwise it opens a char literal.
      if (src_[pos_] == '\'' &&
          !(pos_ + 1 < src_.size() &&
            std::isxdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
        break;
      }
      t.text.push_back(src_[pos_++]);
    }
    return t;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

std::vector<Token> Tokenize(const std::string& source) {
  return Lexer(source).Run();
}

}  // namespace lint
}  // namespace shflbw
