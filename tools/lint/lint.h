// shflbw_lint: the repo-contract static analyzer. Where clang-tidy and
// the thread-safety probes (docs/STATIC_ANALYSIS.md) catch generic C++
// mistakes, this tool enforces the contracts that are specific to THIS
// codebase — the guarantees PRs 1-8 built and that only convention
// protected until now:
//
//   raw-sync          std::mutex / std::lock_guard / std::condition_variable
//                     and friends are forbidden outside
//                     src/common/thread_annotations.h: the annotated
//                     wrappers are the single authoritative locking
//                     layer (capability analysis + lock-order ranks).
//   hot-path          inside SHFLBW_HOT_BEGIN/SHFLBW_HOT_END marker
//                     regions (common/hot_path.h — every kernel inner
//                     loop) no heap allocation, locking, I/O or throw:
//                     the zero-steady-state-allocation contract of the
//                     kernel layer, now machine-checked.
//   hot-marker        marker discipline itself: nested BEGIN, END
//                     without BEGIN, region left open at EOF.
//   determinism       no std::rand / srand / random_device / time() /
//                     clock() in src/, no unordered-container types in
//                     src/ (iteration order feeds ExecutionPlan and
//                     outputs), no fast-math-style pragmas anywhere:
//                     bit-identical output at any thread count is the
//                     repo's core guarantee.
//   nodiscard-status  every unqualified declaration of a function
//                     returning a typed status (SubmitStatus,
//                     ResponseStatus) must carry [[nodiscard]] — a
//                     dropped admission verdict is a silently lost
//                     rejection. Out-of-line definitions (Name spelled
//                     Class::Name) are exempt: the attribute binds at
//                     the in-class declaration.
//   logging           std::cout / std::cerr / printf only in
//                     src/common/logging.cpp (the one sanctioned sink),
//                     and file output (ofstream / fopen / fwrite /
//                     freopen) only in the sanctioned dump sinks
//                     (logging, obs/trace, obs/statusz,
//                     obs/flight_recorder, format/serialize);
//                     bench/, examples/ and tests/ are out of scope.
//   bad-suppression   a malformed SHFLBW_LINT_ALLOW comment (missing
//                     or empty justification, unknown rule name).
//
// Suppression syntax, honoured on the finding's line or the line
// directly above it:
//
//   // SHFLBW_LINT_ALLOW(rule[,rule...]): justification text
//
// The justification is REQUIRED and must be non-empty — a suppression
// states why the contract does not apply at this site, not merely that
// the author wanted the warning gone. Malformed suppressions are
// findings themselves and do not suppress anything.
//
// Deliberately clang-independent: a hand-rolled C++ lexer (comments,
// string/char/raw-string literals, preprocessor lines, identifiers)
// plus token-pattern rules. That keeps the gate runnable on the plain
// GCC tier-1 toolchain, fast enough for the default ctest suite
// (whole tree in well under a second), and trivially extensible — see
// docs/STATIC_ANALYSIS.md "Repo-contract lint" for how to add a rule.
#pragma once

#include <string>
#include <vector>

namespace shflbw {
namespace lint {

enum class TokKind {
  kIdent,      // identifiers and keywords (new, throw, push_back, ...)
  kNumber,     // numeric literals
  kString,     // "..." and R"(...)" (content dropped)
  kChar,       // '...'
  kPunct,      // one punctuation character per token
  kComment,    // // and /* */ comments, text preserved (suppressions)
  kDirective,  // one whole preprocessor line incl. \-continuations
};

struct Token {
  TokKind kind = TokKind::kIdent;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

/// Tokenizes C++ source. Never fails: unterminated literals simply end
/// at EOF. Line numbers are exact, which is all the rules need.
std::vector<Token> Tokenize(const std::string& source);

struct Finding {
  std::string path;  // repo-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string message;
};

/// "path:line: [rule] message" — the one stable diagnostic format,
/// asserted verbatim by the golden tests.
std::string FormatFinding(const Finding& f);

/// Every rule name the tool can emit (and SHFLBW_LINT_ALLOW accepts).
const std::vector<std::string>& RuleNames();

/// Lints one file's contents. `relpath` is the repo-relative path with
/// forward slashes ("src/kernels/spmm_csr.cpp") — rule scoping and the
/// per-rule allowlists key on it, so callers (and the golden tests)
/// can lint any buffer as if it lived at any path. Findings are sorted
/// by line.
std::vector<Finding> LintSource(const std::string& relpath,
                                const std::string& source);

}  // namespace lint
}  // namespace shflbw
