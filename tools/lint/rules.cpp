// Rule implementations for shflbw_lint (see lint.h for the catalogue).
// Every rule is a pass over the token stream from lexer.cpp; scoping
// and allowlists key on the repo-relative path. Adding a rule: add its
// name to kRules, implement a Check* pass, call it from LintSource,
// and give it a fire + suppressed golden fixture under
// tests/lint/fixtures/ (docs/STATIC_ANALYSIS.md, "Repo-contract lint").

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "lint/lint.h"

namespace shflbw {
namespace lint {
namespace {

// ---- rule catalogue ----------------------------------------------------

const char kRawSync[] = "raw-sync";
const char kHotPath[] = "hot-path";
const char kHotMarker[] = "hot-marker";
const char kDeterminism[] = "determinism";
const char kNodiscard[] = "nodiscard-status";
const char kLogging[] = "logging";
const char kBadSuppression[] = "bad-suppression";

const std::vector<std::string> kRules = {
    kRawSync,  kHotPath,   kHotMarker,       kDeterminism,
    kNodiscard, kLogging,  kBadSuppression,
};

// ---- path scoping ------------------------------------------------------

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool InSrc(const std::string& p) { return StartsWith(p, "src/"); }

// ---- suppression handling ----------------------------------------------

/// Collected SHFLBW_LINT_ALLOW grants: (line, rule) pairs. A grant on
/// line L covers findings on L (trailing comment) and L+1 (comment on
/// its own line above the site).
using Suppressions = std::set<std::pair<int, std::string>>;

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Parses every SHFLBW_LINT_ALLOW occurrence in comment tokens.
/// Malformed suppressions (no rule list, unknown rule, missing ':',
/// empty justification) become bad-suppression findings and grant
/// nothing — a broken escape hatch must not silently widen.
Suppressions CollectSuppressions(const std::string& path,
                                 const std::vector<Token>& toks,
                                 std::vector<Finding>* findings) {
  static const char kTag[] = "SHFLBW_LINT_ALLOW";
  Suppressions out;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kComment) continue;
    std::size_t at = t.text.find(kTag);
    while (at != std::string::npos) {
      const std::string rest = t.text.substr(at + sizeof(kTag) - 1);
      const auto bad = [&](const std::string& why) {
        findings->push_back(
            {path, t.line, kBadSuppression,
             "malformed SHFLBW_LINT_ALLOW: " + why +
                 " — the syntax is // SHFLBW_LINT_ALLOW(rule): justification, "
                 "and the justification is required"});
      };
      if (rest.empty() || rest[0] != '(') {
        // Prose mention ("see SHFLBW_LINT_ALLOW in the docs"), not a
        // suppression attempt — only '(' arms the parser.
        at = t.text.find(kTag, at + 1);
        continue;
      }
      const std::size_t close = rest.find(')');
      if (close == std::string::npos) {
        bad("unterminated rule list");
        break;
      }
      // Split the comma-separated rule list.
      std::vector<std::string> rules;
      std::stringstream list(rest.substr(1, close - 1));
      std::string item;
      bool ok = true;
      while (std::getline(list, item, ',')) {
        item = Trim(item);
        if (std::find(kRules.begin(), kRules.end(), item) == kRules.end()) {
          bad("unknown rule '" + item + "'");
          ok = false;
          break;
        }
        rules.push_back(item);
      }
      if (ok && rules.empty()) {
        bad("empty rule list");
        ok = false;
      }
      if (ok) {
        const std::string after = Trim(rest.substr(close + 1));
        if (after.empty() || after[0] != ':' || Trim(after.substr(1)).empty()) {
          bad("missing justification after ':'");
          ok = false;
        }
      }
      if (ok) {
        for (const std::string& r : rules) {
          out.insert({t.line, r});
          out.insert({t.line + 1, r});
        }
      }
      at = t.text.find(kTag, at + 1);
    }
  }
  return out;
}

// ---- shared pass plumbing ----------------------------------------------

struct Pass {
  const std::string& path;
  const std::vector<Token>& toks;
  const Suppressions& allow;
  std::vector<Finding>* findings;

  void Report(int line, const std::string& rule, const std::string& msg) const {
    if (allow.count({line, rule})) return;
    findings->push_back({path, line, rule, msg});
  }

  /// Index of the next non-comment token after i, or toks.size().
  std::size_t NextCode(std::size_t i) const {
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kComment) return j;
    }
    return toks.size();
  }

  /// Index of the previous non-comment token before i, or npos.
  std::size_t PrevCode(std::size_t i) const {
    for (std::size_t j = i; j-- > 0;) {
      if (toks[j].kind != TokKind::kComment) return j;
    }
    return static_cast<std::size_t>(-1);
  }

  bool IsIdent(std::size_t i, const char* text) const {
    return i < toks.size() && toks[i].kind == TokKind::kIdent &&
           toks[i].text == text;
  }
  bool IsPunct(std::size_t i, char c) const {
    return i < toks.size() && toks[i].kind == TokKind::kPunct &&
           toks[i].text.size() == 1 && toks[i].text[0] == c;
  }
  /// True when toks[i] is preceded immediately by `std ::`.
  bool StdQualified(std::size_t i) const {
    std::size_t c1 = PrevCode(i);
    if (c1 == static_cast<std::size_t>(-1) || !IsPunct(c1, ':')) return false;
    std::size_t c2 = PrevCode(c1);
    if (c2 == static_cast<std::size_t>(-1) || !IsPunct(c2, ':')) return false;
    std::size_t c3 = PrevCode(c2);
    return c3 != static_cast<std::size_t>(-1) && IsIdent(c3, "std");
  }
};

// ---- rule: raw-sync ----------------------------------------------------

void CheckRawSync(const Pass& p) {
  // The annotated layer is the only legitimate user of the std
  // primitives (and of their headers).
  if (p.path == "src/common/thread_annotations.h") return;
  static const std::set<std::string> kBanned = {
      "mutex",          "timed_mutex",        "recursive_mutex",
      "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
      "lock_guard",     "unique_lock",        "scoped_lock",
      "shared_lock",    "condition_variable", "condition_variable_any",
      "counting_semaphore",    "binary_semaphore", "latch", "barrier",
  };
  static const std::vector<std::string> kHeaders = {
      "<mutex>", "<condition_variable>", "<shared_mutex>",
      "<semaphore>", "<latch>", "<barrier>"};
  for (std::size_t i = 0; i < p.toks.size(); ++i) {
    const Token& t = p.toks[i];
    if (t.kind == TokKind::kDirective) {
      if (t.text.find("include") == std::string::npos) continue;
      for (const std::string& h : kHeaders) {
        if (t.text.find(h) != std::string::npos) {
          p.Report(t.line, kRawSync,
                   "#include " + h +
                       " bypasses the annotated locking layer; use "
                       "shflbw::Mutex / MutexLock / UniqueLock / CondVar "
                       "(common/thread_annotations.h)");
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent || !kBanned.count(t.text)) continue;
    if (!p.StdQualified(i)) continue;
    p.Report(t.line, kRawSync,
             "raw std::" + t.text +
                 " bypasses the annotated locking layer (capability "
                 "analysis + lock-order ranks); use shflbw::Mutex / "
                 "MutexLock / UniqueLock / CondVar "
                 "(common/thread_annotations.h)");
  }
}

// ---- rules: hot-path + hot-marker --------------------------------------

/// What a banned identifier means inside a SHFLBW_HOT region.
const std::map<std::string, const char*>& HotBanned() {
  static const std::map<std::string, const char*> kMap = {
      // Heap allocation / container growth: the kernel steady state
      // allocates nothing — scratch is prepared before the region.
      {"new", "heap allocation"},
      {"malloc", "heap allocation"},
      {"calloc", "heap allocation"},
      {"realloc", "heap allocation"},
      {"free", "heap free"},
      {"push_back", "container growth (allocates)"},
      {"emplace_back", "container growth (allocates)"},
      {"emplace", "container growth (allocates)"},
      {"resize", "container growth (allocates)"},
      {"reserve", "container growth (allocates)"},
      {"assign", "container refill (may allocate)"},
      {"insert", "container growth (allocates)"},
      {"append", "container growth (allocates)"},
      {"make_unique", "heap allocation"},
      {"make_shared", "heap allocation"},
      {"vector", "container construction (allocates)"},
      {"string", "string construction (allocates)"},
      {"basic_string", "string construction (allocates)"},
      {"to_string", "string construction (allocates)"},
      {"deque", "container construction (allocates)"},
      {"list", "container construction (allocates)"},
      {"map", "container construction (allocates)"},
      {"set", "container construction (allocates)"},
      {"unordered_map", "container construction (allocates)"},
      {"unordered_set", "container construction (allocates)"},
      {"ostringstream", "stream construction (allocates)"},
      {"stringstream", "stream construction (allocates)"},
      // Locking: kernels run inside ParallelFor chunks with no lock
      // held (thread_annotations.h header comment); taking one here
      // serializes the tile schedule or inverts the lock order.
      {"mutex", "locking"},
      {"timed_mutex", "locking"},
      {"recursive_mutex", "locking"},
      {"shared_mutex", "locking"},
      {"lock_guard", "locking"},
      {"unique_lock", "locking"},
      {"scoped_lock", "locking"},
      {"shared_lock", "locking"},
      {"condition_variable", "locking"},
      {"condition_variable_any", "locking"},
      {"Mutex", "locking"},
      {"MutexLock", "locking"},
      {"UniqueLock", "locking"},
      {"CondVar", "locking"},
      {"lock", "locking"},
      {"unlock", "locking"},
      {"try_lock", "locking"},
      // I/O: syscalls in an inner loop destroy the perf contract.
      {"cout", "I/O"},
      {"cerr", "I/O"},
      {"clog", "I/O"},
      {"printf", "I/O"},
      {"fprintf", "I/O"},
      {"puts", "I/O"},
      {"fputs", "I/O"},
      {"fopen", "I/O"},
      {"fwrite", "I/O"},
      {"fread", "I/O"},
      {"ofstream", "I/O"},
      {"ifstream", "I/O"},
      {"fstream", "I/O"},
      {"SHFLBW_LOG", "I/O (and allocates a stringstream)"},
      {"SHFLBW_INFO", "I/O (and allocates a stringstream)"},
      {"SHFLBW_WARN", "I/O (and allocates a stringstream)"},
      {"SHFLBW_DEBUG", "I/O (and allocates a stringstream)"},
      // Throwing: unwinding out of a ParallelFor chunk aborts the whole
      // region; checks belong before the loop.
      {"throw", "throws"},
      {"SHFLBW_CHECK", "throws (and allocates on failure)"},
      {"SHFLBW_CHECK_MSG", "throws (and allocates on failure)"},
  };
  return kMap;
}

void CheckHotRegions(const Pass& p) {
  // The macro definitions themselves live here.
  if (p.path == "src/common/hot_path.h") return;
  bool in_region = false;
  int open_line = 0;
  for (std::size_t i = 0; i < p.toks.size(); ++i) {
    const Token& t = p.toks[i];
    if (t.kind == TokKind::kIdent && t.text == "SHFLBW_HOT_BEGIN") {
      if (in_region) {
        p.Report(t.line, kHotMarker,
                 "nested SHFLBW_HOT_BEGIN (region already open since line " +
                     std::to_string(open_line) + ")");
      }
      in_region = true;
      open_line = t.line;
      continue;
    }
    if (t.kind == TokKind::kIdent && t.text == "SHFLBW_HOT_END") {
      if (!in_region) {
        p.Report(t.line, kHotMarker,
                 "SHFLBW_HOT_END without a matching SHFLBW_HOT_BEGIN");
      }
      in_region = false;
      continue;
    }
    if (!in_region || t.kind != TokKind::kIdent) continue;
    const auto it = HotBanned().find(t.text);
    if (it == HotBanned().end()) continue;
    p.Report(t.line, kHotPath,
             "'" + t.text + "' inside a SHFLBW_HOT region: " + it->second +
                 " — kernel inner loops must not allocate, lock, do I/O or "
                 "throw (common/hot_path.h)");
  }
  if (in_region) {
    p.Report(open_line, kHotMarker,
             "SHFLBW_HOT_BEGIN region never closed (no SHFLBW_HOT_END "
             "before end of file)");
  }
}

// ---- rule: determinism -------------------------------------------------

void CheckDeterminism(const Pass& p) {
  const bool in_src = InSrc(p.path);
  static const std::set<std::string> kRandom = {
      "rand", "srand", "rand_r", "drand48", "random_device"};
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::vector<std::string> kBadPragma = {
      "fast-math", "fast_math", "float_control", "FP_CONTRACT"};
  for (std::size_t i = 0; i < p.toks.size(); ++i) {
    const Token& t = p.toks[i];
    if (t.kind == TokKind::kDirective) {
      // Fast-math-style pragmas break bit-identity in ANY scanned file
      // (a bench compiled differently would invalidate its own gates).
      if (t.text.find("pragma") == std::string::npos) continue;
      for (const std::string& bad : kBadPragma) {
        if (t.text.find(bad) != std::string::npos) {
          p.Report(t.line, kDeterminism,
                   "'" + bad +
                       "' pragma relaxes FP semantics; outputs must stay "
                       "bit-identical at any thread count");
        }
      }
      if (t.text.find("GCC") != std::string::npos &&
          t.text.find("optimize") != std::string::npos) {
        p.Report(t.line, kDeterminism,
                 "per-function optimization pragma can change FP codegen; "
                 "outputs must stay bit-identical at any thread count");
      }
      continue;
    }
    if (!in_src || t.kind != TokKind::kIdent) continue;
    if (kRandom.count(t.text)) {
      p.Report(t.line, kDeterminism,
               "'" + t.text +
                   "' is a nondeterministic source; use the seeded "
                   "generators in common/rng.h");
      continue;
    }
    if (kUnordered.count(t.text)) {
      p.Report(t.line, kDeterminism,
               "std::" + t.text +
                   " has unspecified iteration order, which must not feed "
                   "ExecutionPlan or outputs; use std::map / sorted vectors");
      continue;
    }
    if ((t.text == "time" || t.text == "clock") &&
        p.IsPunct(p.NextCode(i), '(') && !p.StdQualified(i)) {
      // Bare C time()/clock() calls; std::chrono named clocks tokenize
      // as distinct identifiers (steady_clock) and are fine — wall
      // time may be *measured*, it must never steer a plan or kernel.
      std::size_t prev = p.PrevCode(i);
      const bool member = prev != static_cast<std::size_t>(-1) &&
                          (p.IsPunct(prev, '.') || p.IsPunct(prev, ':') ||
                           p.IsPunct(prev, '>'));
      if (!member) {
        p.Report(t.line, kDeterminism,
                 "'" + t.text +
                     "()' injects wall-clock state; seed from options, "
                     "never from time");
      }
    }
  }
}

// ---- rule: nodiscard-status --------------------------------------------

/// True when toks[i] sits at the end of an attribute specifier
/// [[ ... ]] whose content mentions `nodiscard`.
bool AttributeBeforeHasNodiscard(const Pass& p, std::size_t i) {
  std::size_t c1 = p.PrevCode(i);
  if (c1 == static_cast<std::size_t>(-1) || !p.IsPunct(c1, ']')) return false;
  std::size_t c2 = p.PrevCode(c1);
  if (c2 == static_cast<std::size_t>(-1) || !p.IsPunct(c2, ']')) return false;
  // Scan back to the matching [[, collecting identifiers.
  bool saw = false;
  std::size_t j = c2;
  while (j-- > 0) {
    const Token& t = p.toks[j];
    if (t.kind == TokKind::kComment) continue;
    if (t.kind == TokKind::kIdent && t.text == "nodiscard") saw = true;
    if (t.kind == TokKind::kPunct && t.text == "[") {
      std::size_t k = p.PrevCode(j);
      if (k != static_cast<std::size_t>(-1) && p.IsPunct(k, '[')) return saw;
    }
  }
  return false;
}

void CheckNodiscardStatus(const Pass& p) {
  if (!InSrc(p.path)) return;
  static const std::set<std::string> kStatusTypes = {"SubmitStatus",
                                                     "ResponseStatus"};
  for (std::size_t i = 0; i < p.toks.size(); ++i) {
    const Token& t = p.toks[i];
    if (t.kind != TokKind::kIdent || !kStatusTypes.count(t.text)) continue;
    // Candidate declaration: `<Status> name (` with an UNQUALIFIED
    // name. `Status Class::name(` is an out-of-line definition — the
    // attribute binds at the in-class declaration, which is the site
    // this rule checks.
    const std::size_t name = p.NextCode(i);
    if (name >= p.toks.size() || p.toks[name].kind != TokKind::kIdent) continue;
    const std::size_t paren = p.NextCode(name);
    if (!p.IsPunct(paren, '(')) continue;
    // Not a type usage: `enum class SubmitStatus`, casts, scoped
    // enumerators and template arguments never match ident+'(' above;
    // `SubmitStatus(x)` functional casts have no name token. Walk the
    // declaration specifiers backwards past the qualifier/specifier
    // run to find the attribute (if any).
    std::size_t back = i;
    for (;;) {
      std::size_t prev = p.PrevCode(back);
      if (prev == static_cast<std::size_t>(-1)) break;
      const Token& pt = p.toks[prev];
      if (pt.kind == TokKind::kIdent &&
          (pt.text == "virtual" || pt.text == "static" ||
           pt.text == "inline" || pt.text == "constexpr" ||
           pt.text == "explicit" || pt.text == "friend" ||
           pt.text == "const")) {
        back = prev;
        continue;
      }
      // Qualified return type (runtime::SubmitStatus): step over `ns ::`.
      if (pt.kind == TokKind::kPunct && pt.text == ":") {
        std::size_t c2 = p.PrevCode(prev);
        if (c2 != static_cast<std::size_t>(-1) && p.IsPunct(c2, ':')) {
          std::size_t ns = p.PrevCode(c2);
          if (ns != static_cast<std::size_t>(-1) &&
              p.toks[ns].kind == TokKind::kIdent) {
            back = ns;
            continue;
          }
        }
      }
      break;
    }
    if (AttributeBeforeHasNodiscard(p, back)) continue;
    p.Report(p.toks[name].line, kNodiscard,
             "'" + p.toks[name].text + "' returns " + t.text +
                 " and must be declared [[nodiscard]] — a dropped status is "
                 "a silently lost rejection");
  }
}

// ---- rule: logging -----------------------------------------------------

void CheckLogging(const Pass& p) {
  // The sanctioned sink plus everything outside the library: benches,
  // examples and tests print by design.
  if (!InSrc(p.path) || p.path == "src/common/logging.cpp") return;
  static const std::set<std::string> kStreams = {"cout", "cerr", "clog"};
  static const std::set<std::string> kCalls = {"printf", "fprintf", "puts",
                                               "fputs", "putchar"};
  // File output is confined to the sanctioned dump sinks: the logger,
  // trace/statusz/flight-recorder dumps, and weight serialization.
  // Everything else in src/ opening or writing files is a smuggled
  // side channel the operator can't find, rotate, or turn off.
  static const std::set<std::string> kFileSinks = {
      "src/common/logging.cpp",    "src/obs/trace.cpp",
      "src/obs/statusz.cpp",       "src/obs/flight_recorder.cpp",
      "src/format/serialize.cpp"};
  static const std::set<std::string> kFileWriters = {"ofstream", "fopen",
                                                     "fwrite", "freopen"};
  const bool file_sink = kFileSinks.count(p.path) > 0;
  for (std::size_t i = 0; i < p.toks.size(); ++i) {
    const Token& t = p.toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (!file_sink && kFileWriters.count(t.text)) {
      const bool is_type = t.text == "ofstream";
      const bool is_call = p.IsPunct(p.NextCode(i), '(');
      std::size_t prev = p.PrevCode(i);
      const bool member = prev != static_cast<std::size_t>(-1) &&
                          (p.IsPunct(prev, '.') || p.IsPunct(prev, '>'));
      if ((is_type || is_call) && !member) {
        p.Report(t.line, kLogging,
                 "'" + t.text +
                     "' opens a file in library code; file output is "
                     "confined to the sanctioned sinks (logging, trace, "
                     "statusz, flight recorder, serialize)");
        continue;
      }
    }
    if (kStreams.count(t.text) && p.StdQualified(i)) {
      p.Report(t.line, kLogging,
               "std::" + t.text +
                   " in library code; route through SHFLBW_LOG "
                   "(common/logging.h) so level filtering applies");
      continue;
    }
    if (kCalls.count(t.text) && p.IsPunct(p.NextCode(i), '(')) {
      std::size_t prev = p.PrevCode(i);
      const bool member = prev != static_cast<std::size_t>(-1) &&
                          (p.IsPunct(prev, '.') || p.IsPunct(prev, '>'));
      if (!member) {
        p.Report(t.line, kLogging,
                 "'" + t.text +
                     "' in library code; route through SHFLBW_LOG "
                     "(common/logging.h) so level filtering applies");
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& RuleNames() { return kRules; }

std::string FormatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

std::vector<Finding> LintSource(const std::string& relpath,
                                const std::string& source) {
  const std::vector<Token> toks = Tokenize(source);
  std::vector<Finding> findings;
  const Suppressions allow = CollectSuppressions(relpath, toks, &findings);
  const Pass p{relpath, toks, allow, &findings};
  CheckRawSync(p);
  CheckHotRegions(p);
  CheckDeterminism(p);
  CheckNodiscardStatus(p);
  CheckLogging(p);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

}  // namespace lint
}  // namespace shflbw
