// CLI driver for shflbw_lint (see lint.h for the rule catalogue).
//
//   shflbw_lint [--root DIR] PATH...
//
// Each PATH is a file or directory relative to --root (default ".").
// Directories are walked recursively for .h/.cpp files in sorted order,
// so output is deterministic. tests/lint/fixtures is always skipped:
// those files violate rules on purpose. Exit codes: 0 clean, 1 findings,
// 2 usage/IO error.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

std::string ToRel(const fs::path& p, const fs::path& root) {
  std::string s = fs::relative(p, root).generic_string();
  return s;
}

bool SkippedPath(const std::string& rel) {
  // Fixture files break the rules by design; the golden tests lint
  // them with explicit pretend paths instead.
  return rel.find("tests/lint/fixtures") != std::string::npos;
}

int Usage() {
  std::cerr << "usage: shflbw_lint [--root DIR] PATH...\n"
            << "  PATHs are files or directories relative to DIR "
               "(default: .)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage();
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "shflbw_lint: bad --root: " << ec.message() << "\n";
    return 2;
  }

  // Expand inputs into a sorted, deduplicated file list.
  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    const fs::path p = root / in;
    if (fs::is_regular_file(p)) {
      files.push_back(ToRel(p, root));
      continue;
    }
    if (!fs::is_directory(p)) {
      std::cerr << "shflbw_lint: no such file or directory: " << in << "\n";
      return 2;
    }
    for (fs::recursive_directory_iterator it(p), end; it != end; ++it) {
      if (it->is_regular_file() && IsSourceFile(it->path())) {
        files.push_back(ToRel(it->path(), root));
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t n_findings = 0;
  std::size_t n_files = 0;
  for (const std::string& rel : files) {
    if (SkippedPath(rel)) continue;
    std::ifstream f(root / rel, std::ios::binary);
    if (!f) {
      std::cerr << "shflbw_lint: cannot read " << rel << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    ++n_files;
    for (const shflbw::lint::Finding& finding :
         shflbw::lint::LintSource(rel, buf.str())) {
      std::cout << shflbw::lint::FormatFinding(finding) << "\n";
      ++n_findings;
    }
  }
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::cout << "shflbw_lint: " << n_files << " files, " << n_findings
            << " finding" << (n_findings == 1 ? "" : "s") << " (" << ms
            << " ms)\n";
  return n_findings == 0 ? 0 : 1;
}
