#include "benchdiff/benchdiff.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace shflbw {
namespace benchdiff {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

// ---- Parser -------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, /*depth=*/0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing garbage after document");
    return true;
  }

 private:
  bool Fail(const std::string& why) {
    if (error_) {
      std::ostringstream os;
      os << "offset " << pos_ << ": " << why;
      *error_ = os.str();
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Expect(char c) {
    if (Eof() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > 64) return Fail("nesting too deep");
    if (Eof()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    if (!Expect('{')) return false;
    SkipWs();
    if (!Eof() && Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Eof()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    if (!Expect('[')) return false;
    SkipWs();
    if (!Eof() && Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v, depth + 1)) return false;
      out->array.push_back(std::move(v));
      SkipWs();
      if (Eof()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  bool ParseString(std::string* out) {
    if (Eof() || Peek() != '"') return Fail("expected string");
    ++pos_;
    out->clear();
    while (!Eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (Eof()) return Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (Eof()) return Fail("truncated \\u escape");
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // combined — bench output never emits them).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseKeyword(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return Fail("expected true/false");
  }

  bool ParseNull(JsonValue* out) {
    if (text_.substr(pos_, 4) == "null") {
      out->type = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return Fail("expected null");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (!Eof() && Peek() == '-') ++pos_;
    while (!Eof()) {
      const char c = Peek();
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      pos_ = start;
      return Fail("malformed number");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text, error).ParseDocument(out);
}

// ---- Flattening ---------------------------------------------------------

namespace {

/// Identity of an array element: bench result rows carry some of these
/// string members; their joined values make a path segment that is
/// stable under reordering. Checked in this order.
constexpr const char* kIdentityKeys[] = {"name",  "label",    "shape",
                                         "model", "scenario", "format",
                                         "kind"};
/// Fallback numeric identity (serving sweeps are keyed by
/// configuration, not name).
constexpr const char* kNumericIdentityKeys[] = {"replicas", "max_batch",
                                                "batch", "qps", "level"};

std::string ElementIdentity(const JsonValue& element, std::size_t index) {
  if (element.type == JsonValue::Type::kObject) {
    std::string id;
    for (const char* key : kIdentityKeys) {
      const JsonValue* v = element.Find(key);
      if (v != nullptr && v->type == JsonValue::Type::kString &&
          !v->str.empty()) {
        if (!id.empty()) id += ':';
        id += v->str;
      }
    }
    if (!id.empty()) return id;
    for (const char* key : kNumericIdentityKeys) {
      const JsonValue* v = element.Find(key);
      if (v != nullptr && v->type == JsonValue::Type::kNumber) {
        if (!id.empty()) id += ',';
        std::ostringstream os;
        os << key << '=' << v->number;
        id += os.str();
      }
    }
    if (!id.empty()) return id;
  }
  return std::to_string(index);
}

void FlattenInto(const JsonValue& v, const std::string& path,
                 std::map<std::string, double>* out) {
  switch (v.type) {
    case JsonValue::Type::kNumber:
      (*out)[path] = v.number;
      break;
    case JsonValue::Type::kBool:
      (*out)[path] = v.boolean ? 1.0 : 0.0;
      break;
    case JsonValue::Type::kObject:
      for (const auto& [key, member] : v.object) {
        FlattenInto(member, path.empty() ? key : path + '.' + key, out);
      }
      break;
    case JsonValue::Type::kArray:
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        FlattenInto(v.array[i],
                    path + '[' + ElementIdentity(v.array[i], i) + ']', out);
      }
      break;
    case JsonValue::Type::kString:
    case JsonValue::Type::kNull:
      break;  // non-numeric leaves never gate
  }
}

}  // namespace

std::map<std::string, double> FlattenNumeric(const JsonValue& root) {
  std::map<std::string, double> out;
  FlattenInto(root, "", &out);
  return out;
}

// ---- Rules --------------------------------------------------------------

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative glob with single-star backtracking: O(p * t) worst case,
  // fine at these sizes.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<MetricRule> DefaultRules() {
  // First match wins. Tight where the repo promises determinism, loose
  // where the number is a shared-runner wall-clock, ignore where the
  // value describes the run rather than measuring it.
  return {
      // Run descriptors: who built it, how it was configured.
      {"*provenance*", Direction::kIgnore, 0, 0},
      {"*.config.*", Direction::kIgnore, 0, 0},
      {"*threads*", Direction::kIgnore, 0, 0},
      {"*capacity*", Direction::kIgnore, 0, 0},
      {"*seed*", Direction::kIgnore, 0, 0},
      // Determinism flags are bools: any flip to 0 is a hard failure.
      {"*bit_identical*", Direction::kHigherBetter, 0, 0},
      {"*deterministic*", Direction::kHigherBetter, 0, 0},
      // Quality metrics are deterministic (fixed seeds, fixed plans):
      // retained ratios must not sink, error norms must not grow, with
      // a hair of absolute slack for float summation-order noise.
      {"*retained*", Direction::kHigherBetter, 0, 1e-9},
      {"*rel_err*", Direction::kLowerBetter, 0, 1e-9},
      {"*cosine*", Direction::kHigherBetter, 0, 1e-9},
      // Model-derived speedups are deterministic too, but the cost
      // model itself may be retuned; gate drift loosely.
      {"*modeled_speedup*", Direction::kHigherBetter, 0.10, 0},
      {"*speedup*", Direction::kHigherBetter, 0.25, 0},
      // Host-bound wall clock: generous bands for shared CI runners.
      {"*gflops*", Direction::kHigherBetter, 0.40, 0},
      {"*throughput*", Direction::kHigherBetter, 0.35, 0},
      {"*_qps*", Direction::kHigherBetter, 0.35, 0},
      {"*p99*", Direction::kLowerBetter, 1.00, 1e-3},
      {"*p50*", Direction::kLowerBetter, 1.00, 1e-3},
      {"*_ms*", Direction::kLowerBetter, 1.00, 1e-3},
      {"*seconds*", Direction::kLowerBetter, 1.00, 1e-3},
      // Everything else (counts, levels, curve shapes) stays
      // informational until a rule claims it.
  };
}

// ---- Diff ---------------------------------------------------------------

DiffResult Diff(const std::map<std::string, double>& old_run,
                const std::map<std::string, double>& new_run,
                const std::vector<MetricRule>& rules, double rel_scale) {
  DiffResult result;
  for (const auto& [path, old_value] : old_run) {
    const auto it = new_run.find(path);
    if (it == new_run.end()) {
      result.only_old.push_back(path);
      continue;
    }
    MetricDelta d;
    d.path = path;
    d.old_value = old_value;
    d.new_value = it->second;
    d.delta = d.new_value - d.old_value;
    d.rel_delta = old_value != 0 ? d.delta / std::fabs(old_value) : 0;
    for (const MetricRule& rule : rules) {
      if (!GlobMatch(rule.pattern, path)) continue;
      if (rule.direction != Direction::kIgnore) {
        d.gated = true;
        d.direction = rule.direction;
        d.threshold = std::max(rule.rel * rel_scale * std::fabs(old_value),
                               rule.abs);
        const double bad = rule.direction == Direction::kHigherBetter
                               ? -d.delta
                               : d.delta;
        d.regressed = bad > d.threshold;
      }
      break;  // first match wins, ignore included
    }
    if (d.regressed) ++result.regressions;
    result.deltas.push_back(std::move(d));
  }
  for (const auto& [path, value] : new_run) {
    (void)value;
    if (old_run.find(path) == old_run.end()) result.only_new.push_back(path);
  }
  return result;
}

std::string RenderTable(const DiffResult& result) {
  std::ostringstream os;
  os << std::setprecision(6);
  auto emit = [&os](const MetricDelta& d, const char* tag) {
    os << "  " << tag << ' ' << d.path << ": " << d.old_value << " -> "
       << d.new_value << "  (delta " << std::showpos << d.delta
       << std::noshowpos;
    if (d.old_value != 0) {
      os << ", " << std::showpos << 100.0 * d.rel_delta << std::noshowpos
         << "%";
    }
    if (d.gated) os << ", threshold " << d.threshold;
    os << ")\n";
  };
  bool any = false;
  for (const MetricDelta& d : result.deltas) {
    if (!d.regressed) continue;
    if (!any) os << "REGRESSIONS:\n";
    any = true;
    emit(d, "FAIL");
  }
  os << "gated metrics:\n";
  for (const MetricDelta& d : result.deltas) {
    if (d.gated && !d.regressed) emit(d, "ok  ");
  }
  os << "informational (no rule):\n";
  for (const MetricDelta& d : result.deltas) {
    if (!d.gated) emit(d, "info");
  }
  if (!result.only_old.empty()) {
    os << "missing from new run (WARNING):\n";
    for (const std::string& p : result.only_old) os << "  " << p << "\n";
  }
  if (!result.only_new.empty()) {
    os << "new metrics (informational):\n";
    for (const std::string& p : result.only_new) os << "  " << p << "\n";
  }
  os << (result.regressions > 0 ? "verdict: REGRESSED (" : "verdict: ok (")
     << result.regressions << " regression(s), " << result.deltas.size()
     << " compared)\n";
  return os.str();
}

}  // namespace benchdiff
}  // namespace shflbw
