// benchdiff: the bench-trajectory regression gate (tools/benchdiff).
//
// Compares two BENCH_*.json runs (bench/ emits them; CI commits the
// blessed baselines at the repo root) metric by metric: every numeric
// leaf of the two documents is flattened to a stable dotted path,
// matched against an ordered rule list that says which direction is
// "better" and how much movement is noise, and anything that moved
// beyond its threshold in the bad direction is a regression. The CLI
// exits nonzero on regressions, so CI can gate merges on the committed
// baselines without hand-curating a metric list — new metrics start
// informational until a rule claims them.
//
// Self-contained (no third-party JSON dependency): the parser below
// handles the subset bench/ emits — objects, arrays, numbers, strings,
// bools, null — and is strict about everything else. The same parser
// doubles as the validity oracle for BatchServer::StatusJson() in
// tests/runtime/statusz_test.cpp.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shflbw {
namespace benchdiff {

// ---- JSON ---------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion order preserved (duplicate keys kept; first wins in
  /// Find), so flattened paths are stable across runs.
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with `key`, or nullptr (also when not an object).
  [[nodiscard]] const JsonValue* Find(const std::string& key) const;
};

/// Strict recursive-descent parse of a complete JSON document
/// (trailing whitespace allowed, trailing garbage is an error). On
/// failure returns false and sets *error to "offset N: reason".
[[nodiscard]] bool ParseJson(std::string_view text, JsonValue* out,
                             std::string* error);

// ---- Flattening ---------------------------------------------------------

/// Every numeric leaf of `root` as path -> value (bools count as 0/1;
/// strings and nulls are skipped). Object members join with '.';
/// an array element's path segment is "[<identity>]" where identity is
/// the element's human-stable label when one can be derived (the
/// joined values of its name/label/shape/model/... string members, or
/// its replicas/batch numeric combo), falling back to the element
/// index — so reordering results between runs doesn't misalign the
/// diff, but anonymous arrays still flatten deterministically.
[[nodiscard]] std::map<std::string, double> FlattenNumeric(
    const JsonValue& root);

// ---- Rules and diffing --------------------------------------------------

enum class Direction {
  kHigherBetter,  // drop beyond threshold = regression
  kLowerBetter,   // rise beyond threshold = regression
  kIgnore,        // never gates (provenance, timestamps, configuration)
};

/// One gate rule. `pattern` is a glob over the flattened path ('*' =
/// any span, '?' = one char, case-sensitive). A metric's movement is
/// noise while |new - old| <= max(rel * |old|, abs); beyond that, the
/// bad direction is a regression. First matching rule wins; metrics no
/// rule matches are reported but never gate.
struct MetricRule {
  std::string pattern;
  Direction direction = Direction::kIgnore;
  double rel = 0.1;  ///< relative noise threshold (fraction of |old|)
  double abs = 0.0;  ///< absolute noise floor (same unit as the metric)
};

/// The built-in rule list: tight on deterministic metrics
/// (bit-identical flags must not move at all), generous on host-bound
/// wall-clock (gflops/throughput on a shared CI runner), ignore on
/// provenance. `rel_scale` multiplies every relative threshold (CI
/// passes >1 on noisy runners).
[[nodiscard]] std::vector<MetricRule> DefaultRules();

/// One compared metric.
struct MetricDelta {
  std::string path;
  double old_value = 0;
  double new_value = 0;
  double delta = 0;      // new - old
  double rel_delta = 0;  // delta / |old| (0 when old == 0)
  bool gated = false;    // a non-ignore rule matched
  Direction direction = Direction::kIgnore;
  double threshold = 0;  // effective max(rel*|old|, abs) when gated
  bool regressed = false;
};

struct DiffResult {
  std::vector<MetricDelta> deltas;          // metrics present in both
  std::vector<std::string> only_old;        // disappeared (warning)
  std::vector<std::string> only_new;        // appeared (informational)
  int regressions = 0;
};

/// Diffs two flattened runs under `rules` (first match wins),
/// scaling every relative threshold by `rel_scale`.
[[nodiscard]] DiffResult Diff(const std::map<std::string, double>& old_run,
                              const std::map<std::string, double>& new_run,
                              const std::vector<MetricRule>& rules,
                              double rel_scale = 1.0);

/// Glob match ('*' any span, '?' one char). Exposed for tests.
[[nodiscard]] bool GlobMatch(std::string_view pattern, std::string_view text);

/// Human-readable per-metric delta table (regressions flagged, then
/// gated-but-ok, then informational), plus the missing/new lists and a
/// one-line verdict.
[[nodiscard]] std::string RenderTable(const DiffResult& result);

}  // namespace benchdiff
}  // namespace shflbw
