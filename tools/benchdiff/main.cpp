// CLI driver for benchdiff (see benchdiff.h for the diff model).
//
//   benchdiff [--rule PATTERN,DIR,REL[,ABS]]... [--rel-scale X]
//             OLD.json NEW.json
//
// Flattens both BENCH_*.json documents to path -> number maps, diffs
// them under the rule list (any --rule flags are prepended to the
// built-in defaults, so they take precedence), prints the per-metric
// delta table, and exits 0 when no gated metric regressed, 1 when one
// did, 2 on usage / IO / parse errors. DIR is one of higher | lower |
// ignore; REL is the relative noise threshold (fraction of |old|) and
// ABS the absolute floor. --rel-scale multiplies every relative
// threshold (CI passes >1 on noisy shared runners).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchdiff/benchdiff.h"

namespace {

using shflbw::benchdiff::Direction;
using shflbw::benchdiff::MetricRule;

int Usage() {
  std::cerr << "usage: benchdiff [--rule PATTERN,DIR,REL[,ABS]]... "
               "[--rel-scale X] OLD.json NEW.json\n"
            << "  DIR: higher | lower | ignore\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  *out = buf.str();
  return true;
}

/// "PATTERN,DIR,REL[,ABS]" -> rule; false on malformed input.
bool ParseRuleFlag(const std::string& spec, MetricRule* out) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : spec) {
    if (c == ',') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  if (parts.size() < 3 || parts.size() > 4 || parts[0].empty()) return false;
  out->pattern = parts[0];
  if (parts[1] == "higher") {
    out->direction = Direction::kHigherBetter;
  } else if (parts[1] == "lower") {
    out->direction = Direction::kLowerBetter;
  } else if (parts[1] == "ignore") {
    out->direction = Direction::kIgnore;
  } else {
    return false;
  }
  try {
    out->rel = std::stod(parts[2]);
    out->abs = parts.size() == 4 ? std::stod(parts[3]) : 0.0;
  } catch (...) {
    return false;
  }
  return out->rel >= 0 && out->abs >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<MetricRule> rules;
  double rel_scale = 1.0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rule") {
      if (i + 1 >= argc) return Usage();
      MetricRule rule;
      if (!ParseRuleFlag(argv[++i], &rule)) {
        std::cerr << "benchdiff: bad --rule spec: " << argv[i] << "\n";
        return 2;
      }
      rules.push_back(rule);
    } else if (arg == "--rel-scale") {
      if (i + 1 >= argc) return Usage();
      try {
        rel_scale = std::stod(argv[++i]);
      } catch (...) {
        return Usage();
      }
      if (rel_scale <= 0) return Usage();
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return Usage();

  const std::vector<MetricRule> defaults = shflbw::benchdiff::DefaultRules();
  rules.insert(rules.end(), defaults.begin(), defaults.end());

  std::map<std::string, double> flat[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!ReadFile(paths[static_cast<std::size_t>(i)], &text)) {
      std::cerr << "benchdiff: cannot read "
                << paths[static_cast<std::size_t>(i)] << "\n";
      return 2;
    }
    shflbw::benchdiff::JsonValue doc;
    std::string error;
    if (!shflbw::benchdiff::ParseJson(text, &doc, &error)) {
      std::cerr << "benchdiff: " << paths[static_cast<std::size_t>(i)]
                << ": " << error << "\n";
      return 2;
    }
    flat[i] = shflbw::benchdiff::FlattenNumeric(doc);
  }

  const shflbw::benchdiff::DiffResult result =
      shflbw::benchdiff::Diff(flat[0], flat[1], rules, rel_scale);
  std::cout << "benchdiff: " << paths[0] << " -> " << paths[1] << "\n"
            << shflbw::benchdiff::RenderTable(result);
  return result.regressions > 0 ? 1 : 0;
}
